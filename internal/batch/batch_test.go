package batch

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
)

func batchEngine(t *testing.T) *core.Engine {
	t.Helper()
	g := graph.CopyingModel(120, 4, 0.3, 5)
	p := core.DefaultParams()
	p.Seed = 1
	p.Workers = 2
	p.RAlpha = 300
	return core.Build(g, p)
}

func TestRunCoversAllVertices(t *testing.T) {
	e := batchEngine(t)
	var buf bytes.Buffer
	processed, err := Run(Job{Engine: e, K: 5}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	n := e.Graph().N()
	if processed != n {
		t.Fatalf("processed %d of %d", processed, n)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != n {
		t.Fatalf("%d lines for %d vertices", len(lines), n)
	}
	// Output is in ascending vertex order and parseable.
	for i, line := range lines {
		u, res, err := ParseLine(line)
		if err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if int(u) != i {
			t.Fatalf("line %d is vertex %d", i, u)
		}
		if len(res) > 5 {
			t.Fatalf("vertex %d has %d results", u, len(res))
		}
	}
}

func TestRunSharding(t *testing.T) {
	e := batchEngine(t)
	n := e.Graph().N()
	var full bytes.Buffer
	if _, err := Run(Job{Engine: e, K: 5}, &full); err != nil {
		t.Fatal(err)
	}
	// Three shards must cover the whole graph exactly once and agree
	// with the unsharded run line-for-line.
	var shardLines []string
	for s := 0; s < 3; s++ {
		var buf bytes.Buffer
		if _, err := Run(Job{Engine: e, K: 5, Shard: s, NumShards: 3}, &buf); err != nil {
			t.Fatal(err)
		}
		shardLines = append(shardLines, strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")...)
	}
	if len(shardLines) != n {
		t.Fatalf("shards produced %d lines", len(shardLines))
	}
	fullLines := map[string]bool{}
	for _, l := range strings.Split(strings.TrimRight(full.String(), "\n"), "\n") {
		fullLines[l] = true
	}
	for _, l := range shardLines {
		if !fullLines[l] {
			t.Fatalf("shard line not in full output: %q", l)
		}
	}
}

func TestRunResume(t *testing.T) {
	e := batchEngine(t)
	n := e.Graph().N()
	var first bytes.Buffer
	if _, err := Run(Job{Engine: e, K: 5}, &first); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash: keep the first 40 lines plus a torn 41st.
	lines := strings.SplitAfter(first.String(), "\n")
	partial := strings.Join(lines[:40], "") + lines[40][:len(lines[40])/2]
	done, err := ScanCompleted(strings.NewReader(partial))
	if err != nil {
		t.Fatal(err)
	}
	if len(done) != 40 {
		t.Fatalf("scan found %d completed, want 40", len(done))
	}
	var rest bytes.Buffer
	processed, err := Run(Job{Engine: e, K: 5, Done: done}, &rest)
	if err != nil {
		t.Fatal(err)
	}
	if processed != n-40 {
		t.Fatalf("resume processed %d, want %d", processed, n-40)
	}
	// Concatenation covers every vertex exactly once.
	all := strings.Join(lines[:40], "") + rest.String()
	seen := map[uint32]bool{}
	for _, l := range strings.Split(strings.TrimRight(all, "\n"), "\n") {
		u, _, err := ParseLine(l)
		if err != nil {
			t.Fatal(err)
		}
		if seen[u] {
			t.Fatalf("vertex %d duplicated", u)
		}
		seen[u] = true
	}
	if len(seen) != n {
		t.Fatalf("combined output covers %d of %d", len(seen), n)
	}
}

func TestRunValidation(t *testing.T) {
	e := batchEngine(t)
	var buf bytes.Buffer
	if _, err := Run(Job{Engine: nil, K: 5}, &buf); err == nil {
		t.Fatal("nil engine accepted")
	}
	if _, err := Run(Job{Engine: e, K: 0}, &buf); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := Run(Job{Engine: e, K: 5, Shard: 3, NumShards: 3}, &buf); err == nil {
		t.Fatal("bad shard accepted")
	}
}

func TestProgressCallback(t *testing.T) {
	e := batchEngine(t)
	var buf bytes.Buffer
	calls := 0
	_, err := Run(Job{Engine: e, K: 3, Progress: func(done, total int) { calls++ }}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Fatal("progress never reported")
	}
}

func TestScanCompletedGarbage(t *testing.T) {
	in := "5\t1:0.5\nnot a line\n7\t2:0.25\t3:bad\n9\n"
	done, err := ScanCompleted(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if !done[5] || !done[9] {
		t.Fatalf("valid lines missed: %v", done)
	}
	if done[7] {
		t.Fatal("torn line counted as complete")
	}
	if len(done) != 2 {
		t.Fatalf("done = %v", done)
	}
}

func TestParseLineErrors(t *testing.T) {
	for _, bad := range []string{"x", "1\tnocolon", "1\tx:0.5", "1\t2:x"} {
		if _, _, err := ParseLine(bad); err == nil {
			t.Fatalf("parsed %q", bad)
		}
	}
	u, res, err := ParseLine("3")
	if err != nil || u != 3 || len(res) != 0 {
		t.Fatalf("bare vertex line: %v %v %v", u, res, err)
	}
}
