// Package eval provides ranking-quality metrics for comparing approximate
// similarity rankings against exact ones: precision/recall at k, NDCG,
// and Kendall rank correlation. The experiment harness uses these to
// quantify how well the Monte-Carlo top-k reproduces the exact SimRank
// ranking beyond the paper's single recall number.
package eval

import (
	"fmt"
	"math"
	"sort"
)

// Ranking is an ordered list of items, best first.
type Ranking []uint32

// PrecisionAtK returns |got[:k] ∩ want[:k]| / k. If got has fewer than k
// entries the denominator stays k (missing results count against
// precision).
func PrecisionAtK(got, want Ranking, k int) float64 {
	if k <= 0 {
		return 0
	}
	if len(want) < k {
		k = len(want)
		if k == 0 {
			return 0
		}
	}
	wantSet := make(map[uint32]struct{}, k)
	for _, v := range want[:k] {
		wantSet[v] = struct{}{}
	}
	hits := 0
	top := got
	if len(top) > k {
		top = top[:k]
	}
	for _, v := range top {
		if _, ok := wantSet[v]; ok {
			hits++
		}
	}
	return float64(hits) / float64(k)
}

// RecallOfSet returns |got ∩ want| / |want| where want is a target set
// (e.g. all vertices above a score threshold).
func RecallOfSet(got Ranking, want map[uint32]struct{}) float64 {
	if len(want) == 0 {
		return 1
	}
	hits := 0
	for _, v := range got {
		if _, ok := want[v]; ok {
			hits++
		}
	}
	return float64(hits) / float64(len(want))
}

// NDCGAtK computes the normalized discounted cumulative gain of the
// approximate ranking `got` against graded relevances `rel` (typically
// the exact SimRank scores), at cutoff k.
func NDCGAtK(got Ranking, rel map[uint32]float64, k int) float64 {
	if k <= 0 || len(rel) == 0 {
		return 0
	}
	dcg := 0.0
	for i, v := range got {
		if i >= k {
			break
		}
		dcg += rel[v] / math.Log2(float64(i)+2)
	}
	// Ideal ordering: relevances descending.
	ideal := make([]float64, 0, len(rel))
	for _, r := range rel {
		ideal = append(ideal, r)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(ideal)))
	idcg := 0.0
	for i, r := range ideal {
		if i >= k {
			break
		}
		idcg += r / math.Log2(float64(i)+2)
	}
	if idcg == 0 {
		return 0
	}
	return dcg / idcg
}

// KendallTau computes the Kendall rank correlation between two rankings
// over their common items. Returns an error when fewer than two items are
// shared. Ties cannot occur since rankings are by position.
func KendallTau(a, b Ranking) (float64, error) {
	posB := make(map[uint32]int, len(b))
	for i, v := range b {
		posB[v] = i
	}
	// Common items in a's order, mapped to their positions in b.
	var seq []int
	for _, v := range a {
		if p, ok := posB[v]; ok {
			seq = append(seq, p)
		}
	}
	n := len(seq)
	if n < 2 {
		return 0, fmt.Errorf("eval: need at least 2 common items, have %d", n)
	}
	concordant, discordant := 0, 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if seq[i] < seq[j] {
				concordant++
			} else {
				discordant++
			}
		}
	}
	total := concordant + discordant
	return float64(concordant-discordant) / float64(total), nil
}

// Overlap returns the Jaccard overlap |a ∩ b| / |a ∪ b| of two rankings
// viewed as sets.
func Overlap(a, b Ranking) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	setA := make(map[uint32]struct{}, len(a))
	for _, v := range a {
		setA[v] = struct{}{}
	}
	inter := 0
	setB := make(map[uint32]struct{}, len(b))
	for _, v := range b {
		if _, dup := setB[v]; dup {
			continue
		}
		setB[v] = struct{}{}
		if _, ok := setA[v]; ok {
			inter++
		}
	}
	union := len(setA) + len(setB) - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// Collect converts any best-first scored list into a Ranking using the
// supplied ID accessor, e.g. eval.Collect(res, func(s core.Scored) uint32
// { return s.V }).
func Collect[T any](xs []T, id func(T) uint32) Ranking {
	out := make(Ranking, len(xs))
	for i, x := range xs {
		out[i] = id(x)
	}
	return out
}
