package eval

import (
	"math"
	"testing"
)

func TestPrecisionAtK(t *testing.T) {
	got := Ranking{1, 2, 3, 4}
	want := Ranking{2, 1, 9, 8}
	if p := PrecisionAtK(got, want, 2); p != 1 {
		t.Fatalf("p@2 = %v", p) // {1,2} vs {2,1}
	}
	if p := PrecisionAtK(got, want, 4); p != 0.5 {
		t.Fatalf("p@4 = %v", p) // {1,2,3,4} vs {2,1,9,8} -> 2/4
	}
	if p := PrecisionAtK(got, want, 0); p != 0 {
		t.Fatalf("p@0 = %v", p)
	}
	// k clamps to len(want).
	if p := PrecisionAtK(Ranking{2}, Ranking{2}, 5); p != 1 {
		t.Fatalf("clamped p = %v", p)
	}
	if p := PrecisionAtK(Ranking{}, Ranking{1, 2}, 2); p != 0 {
		t.Fatalf("empty got p = %v", p)
	}
}

func TestRecallOfSet(t *testing.T) {
	want := map[uint32]struct{}{1: {}, 2: {}, 3: {}}
	if r := RecallOfSet(Ranking{1, 3, 9}, want); math.Abs(r-2.0/3) > 1e-12 {
		t.Fatalf("recall = %v", r)
	}
	if r := RecallOfSet(Ranking{}, map[uint32]struct{}{}); r != 1 {
		t.Fatalf("empty-want recall = %v", r)
	}
}

func TestNDCGPerfectAndWorst(t *testing.T) {
	rel := map[uint32]float64{1: 3, 2: 2, 3: 1}
	if n := NDCGAtK(Ranking{1, 2, 3}, rel, 3); math.Abs(n-1) > 1e-12 {
		t.Fatalf("perfect NDCG = %v", n)
	}
	worst := NDCGAtK(Ranking{3, 2, 1}, rel, 3)
	if worst >= 1 || worst <= 0 {
		t.Fatalf("reversed NDCG = %v", worst)
	}
	if n := NDCGAtK(Ranking{9, 8}, rel, 2); n != 0 {
		t.Fatalf("irrelevant NDCG = %v", n)
	}
	if n := NDCGAtK(Ranking{1}, map[uint32]float64{}, 3); n != 0 {
		t.Fatalf("empty rel NDCG = %v", n)
	}
}

func TestKendallTau(t *testing.T) {
	a := Ranking{1, 2, 3, 4}
	if tau, err := KendallTau(a, a); err != nil || tau != 1 {
		t.Fatalf("identical tau = %v err %v", tau, err)
	}
	rev := Ranking{4, 3, 2, 1}
	if tau, err := KendallTau(a, rev); err != nil || tau != -1 {
		t.Fatalf("reversed tau = %v err %v", tau, err)
	}
	// Partial overlap: common items {2,3} in same order.
	if tau, err := KendallTau(Ranking{2, 3, 9}, Ranking{8, 2, 3}); err != nil || tau != 1 {
		t.Fatalf("partial tau = %v err %v", tau, err)
	}
	if _, err := KendallTau(Ranking{1}, Ranking{2}); err == nil {
		t.Fatal("expected error for <2 common items")
	}
}

func TestOverlap(t *testing.T) {
	if o := Overlap(Ranking{1, 2}, Ranking{2, 3}); math.Abs(o-1.0/3) > 1e-12 {
		t.Fatalf("overlap = %v", o)
	}
	if o := Overlap(Ranking{}, Ranking{}); o != 1 {
		t.Fatalf("empty overlap = %v", o)
	}
	if o := Overlap(Ranking{1}, Ranking{1}); o != 1 {
		t.Fatalf("identical overlap = %v", o)
	}
	// Duplicates in b are ignored.
	if o := Overlap(Ranking{1, 2}, Ranking{1, 1, 2}); o != 1 {
		t.Fatalf("dup overlap = %v", o)
	}
}

func TestCollect(t *testing.T) {
	type scored struct {
		V     uint32
		Score float64
	}
	r := Collect([]scored{{5, 0.9}, {3, 0.1}}, func(s scored) uint32 { return s.V })
	if len(r) != 2 || r[0] != 5 || r[1] != 3 {
		t.Fatalf("Collect = %v", r)
	}
}
