// Package yu implements the all-pairs SimRank baseline of Yu et al.
// (WWW Journal 2012), the state-of-the-art all-pairs comparator in
// Section 8.3 of the paper: the iteration S ← (c·Pᵀ S P) ∨ I evaluated
// with sparse-dense products in O(T·n·m) time and O(n²) space.
//
// The defining property the comparison exploits is the Θ(n²) memory:
// the package predicts the allocation up front and fails cleanly when it
// exceeds the configured budget, reproducing the "failed to allocate"
// cells of Table 4.
package yu

import (
	"fmt"
	"time"

	"repro/internal/exact"
	"repro/internal/graph"
)

// ErrMemoryBudget is returned when the dense matrices would exceed the
// configured budget.
type ErrMemoryBudget struct {
	Need, Budget int64
}

func (e *ErrMemoryBudget) Error() string {
	return fmt.Sprintf("yu: all-pairs computation needs %d bytes, budget %d", e.Need, e.Budget)
}

// Params configures the baseline.
type Params struct {
	C float64
	T int
	// MemoryBudget bounds the dense working set in bytes; 0 = unlimited.
	MemoryBudget int64
}

// DefaultParams mirrors the paper's comparison: c = 0.6, T = 11.
func DefaultParams() Params { return Params{C: 0.6, T: 11} }

// Result is the dense all-pairs SimRank matrix plus cost accounting.
type Result struct {
	S       *exact.Matrix
	Bytes   int64
	Elapsed time.Duration
}

// PredictBytes returns the peak dense allocation of AllPairs: the current
// matrix, the Pᵀ S intermediate, and the next matrix.
func PredictBytes(n int) int64 {
	return 3 * int64(n) * int64(n) * 8
}

// AllPairs runs the O(T·n·m) iteration. It fails with *ErrMemoryBudget if
// the predicted allocation exceeds the budget.
func AllPairs(g *graph.Graph, p Params) (*Result, error) {
	if p.T <= 0 || p.C <= 0 || p.C >= 1 {
		return nil, fmt.Errorf("yu: invalid params c=%v T=%d", p.C, p.T)
	}
	need := PredictBytes(g.N())
	if p.MemoryBudget > 0 && need > p.MemoryBudget {
		return nil, &ErrMemoryBudget{Need: need, Budget: p.MemoryBudget}
	}
	//lint:ignore norand Elapsed is a reported preprocess statistic, never an algorithm input
	start := time.Now()
	s := exact.PartialSumsAllPairs(g, p.C, p.T)
	//lint:ignore norand see above: timing is reporting-only
	return &Result{S: s, Bytes: need, Elapsed: time.Since(start)}, nil
}

// TopK extracts the k most similar vertices to u from the dense result,
// best first.
func (r *Result) TopK(u uint32, k int) []exact.Scored {
	return exact.TopK(r.S.Row(int(u)), u, k)
}

// AllTopK extracts top-k lists for every vertex.
func (r *Result) AllTopK(k int) [][]exact.Scored {
	out := make([][]exact.Scored, r.S.N)
	for u := 0; u < r.S.N; u++ {
		out[u] = r.TopK(uint32(u), k)
	}
	return out
}
