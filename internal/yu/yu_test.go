package yu

import (
	"errors"
	"testing"

	"repro/internal/exact"
	"repro/internal/graph"
)

func TestAllPairsMatchesNaive(t *testing.T) {
	g := graph.ErdosRenyi(25, 80, 3)
	res, err := AllPairs(g, Params{C: 0.6, T: 10})
	if err != nil {
		t.Fatal(err)
	}
	naive := exact.NaiveAllPairs(g, 0.6, 10)
	if d := exact.MaxAbsDiff(res.S, naive); d > 1e-12 {
		t.Fatalf("differs from naive by %v", d)
	}
	if res.Bytes != PredictBytes(g.N()) {
		t.Fatal("bytes accounting wrong")
	}
	if res.Elapsed <= 0 {
		t.Fatal("elapsed not recorded")
	}
}

func TestMemoryBudgetFailure(t *testing.T) {
	g := graph.ErdosRenyi(2000, 8000, 1)
	_, err := AllPairs(g, Params{C: 0.6, T: 5, MemoryBudget: 1 << 20})
	var mb *ErrMemoryBudget
	if !errors.As(err, &mb) {
		t.Fatalf("expected ErrMemoryBudget, got %v", err)
	}
	if mb.Error() == "" {
		t.Fatal("empty error string")
	}
}

func TestInvalidParams(t *testing.T) {
	g := graph.ErdosRenyi(10, 30, 1)
	for _, p := range []Params{{C: 0, T: 5}, {C: 0.6, T: 0}, {C: 1.0, T: 5}} {
		if _, err := AllPairs(g, p); err == nil {
			t.Fatalf("expected error for %+v", p)
		}
	}
}

func TestTopKFromDense(t *testing.T) {
	g := graph.Collaboration(40, 5, 0.8, 15, 5)
	res, err := AllPairs(g, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	top := res.TopK(0, 5)
	if len(top) > 5 {
		t.Fatalf("returned %d", len(top))
	}
	for i := 1; i < len(top); i++ {
		if top[i].Score > top[i-1].Score {
			t.Fatal("unsorted")
		}
	}
	all := res.AllTopK(3)
	if len(all) != g.N() {
		t.Fatalf("AllTopK rows = %d", len(all))
	}
	for i, s := range all[0] {
		if i < len(top) && s != top[0] && i == 0 {
			t.Fatalf("AllTopK[0] differs from TopK(0): %v vs %v", s, top[0])
		}
		break
	}
}
