// Package server exposes a similarity-search index over HTTP with a small
// JSON API, so the library can run as a standalone service:
//
//	GET /topk?u=42&k=20          -> {"query":42,"results":[{"node":7,"score":0.31},...]}
//	GET /topk?u=42&k=20&stats=1  -> same, plus per-query pruning + cache statistics
//	POST /topk/batch             -> {"queries":[1,2,...],"k":20,"stats":true} answers
//	                                many queries against one snapshot, sharing the
//	                                tally cache across the batch
//	GET /pair?u=42&v=99          -> {"u":42,"v":99,"score":0.018}
//	GET /similar?u=42&theta=0.05 -> same shape as /topk
//	GET /stats                   -> graph and index statistics
//	GET /statusz                 -> serving counters (queries, batches, cache, timeouts)
//	GET /healthz                 -> 200 ok (process is up)
//	GET /readyz                  -> 200 ok (index built, queries served)
//
// A handler can also serve as one shard of a topology (NewShard): the
// shard-serving endpoints restrict candidate scoring to the owned vertex
// range and are consumed by the router tier (internal/router), which
// merges per-shard fragments back into byte-identical single-node
// answers:
//
//	GET /shardinfo               -> shard manifest (range, graph/params fingerprints)
//	GET /shard/topk?u=42         -> scored candidate fragment for the owned range
//	POST /shard/topk/batch       -> {"queries":[...]} fragments for many queries
//	GET /shard/similar?u=42&theta=0.05 -> owned-range threshold results
//
// Errors carry a JSON body {"error": msg, "code": stable_code}; retryable
// 503s (timeout, cancellation, not-ready) also set Retry-After.
//
// The handler is safe for concurrent requests; the underlying index is an
// immutable snapshot. Every query runs under the request context (plus
// QueryTimeout, when set), so client disconnects and deadlines cancel the
// walk computation between candidate-scoring blocks.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	simrank "repro"
	"repro/internal/shard"
)

// Handler serves the JSON API for one index — either a stand-alone
// server (shard 0 of 1, the default) or one shard of a topology, in
// which case the /shard/* endpoints restrict candidate scoring to the
// owned vertex range and /shardinfo publishes the manifest a router
// validates before merging fragments. The full single-node endpoints
// stay available in either role (a shard holds the whole snapshot; the
// partition splits scoring work, not data).
type Handler struct {
	idx      *simrank.Index
	mux      *http.ServeMux
	manifest shard.Manifest
	counters counters
	// shardPool recycles shard-request working sets (fragment buffers,
	// stats, wire message shells) across requests and connections.
	shardPool sync.Pool
	// binAddr holds the bound address of the binary wire listener once
	// ServeBin is up; advertised as Manifest.BinAddr on /shardinfo.
	binAddr atomic.Value
	// MaxK caps the k parameter to keep responses bounded (default 1000).
	MaxK int
	// MaxBatch caps the number of queries one /topk/batch request may
	// carry (default 1024).
	MaxBatch int
	// QueryTimeout bounds each query's computation (0 = no limit beyond
	// the request context).
	QueryTimeout time.Duration
}

// New returns a ready-to-mount stand-alone handler (shard 0 of 1).
func New(idx *simrank.Index) *Handler {
	return NewShard(idx, 0, 1)
}

// NewShard returns a handler serving shard shardIdx of numShards. The
// owned vertex range is the canonical partition shard.Range(shardIdx,
// numShards, n); /shard/* queries score only that range.
func NewShard(idx *simrank.Index, shardIdx, numShards int) *Handler {
	h := &Handler{idx: idx, MaxK: 1000, MaxBatch: 1024}
	h.shardPool.New = func() any { return new(shardScratch) }
	gfp, pfp := idx.ServingFingerprint()
	h.manifest = shard.Build(shardIdx, numShards, idx.Graph().NumVertices(),
		gfp, pfp, idx.Seed(), idx.Threshold())
	mux := http.NewServeMux()
	mux.HandleFunc("/topk", h.handleTopK)
	mux.HandleFunc("/topk/batch", h.handleTopKBatch)
	mux.HandleFunc("/pair", h.handlePair)
	mux.HandleFunc("/similar", h.handleSimilar)
	mux.HandleFunc("/join", h.handleJoin)
	mux.HandleFunc("/stats", h.handleStats)
	mux.HandleFunc("/statusz", h.handleStatusz)
	mux.HandleFunc("/shardinfo", h.handleShardInfo)
	mux.HandleFunc("/shard/topk", h.handleShardTopK)
	mux.HandleFunc("/shard/topk/batch", h.handleShardTopKBatch)
	mux.HandleFunc("/shard/similar", h.handleShardSimilar)
	mux.HandleFunc("/healthz", h.handleHealth)
	mux.HandleFunc("/readyz", h.handleHealth)
	h.mux = mux
	return h
}

// Manifest returns the shard manifest this handler serves under,
// including the binary listener address when one is serving.
func (h *Handler) Manifest() shard.Manifest { return h.manifestView() }

// manifestView is the manifest as published: the static topology facts
// plus the live BinAddr transport hint.
func (h *Handler) manifestView() shard.Manifest {
	m := h.manifest
	if a, ok := h.binAddr.Load().(string); ok {
		m.BinAddr = a
	}
	return m
}

// queryCtx derives the context queries run under: the request context
// (cancelled when the client disconnects) bounded by QueryTimeout.
func (h *Handler) queryCtx(r *http.Request) (context.Context, context.CancelFunc) {
	if h.QueryTimeout > 0 {
		return context.WithTimeout(r.Context(), h.QueryTimeout)
	}
	return r.Context(), func() {}
}

// Stable machine-readable error codes (ErrorResponse.Code). The router
// keys retry/hedge decisions off these, never off message text.
const (
	CodeBadRequest = "bad_request"
	CodeTimeout    = "timeout"
	CodeCancelled  = "cancelled"
	CodeNotReady   = "not_ready"
	CodeInternal   = "internal"
	// CodeUpstream is used by the router tier when a shard request
	// exhausted every attempt; the single-node handler never emits it.
	CodeUpstream = "upstream"
)

// writeQueryError maps a query error to an HTTP status: context errors
// become 503 with Retry-After (the query was cut short by load or
// disconnect, not malformed — a client may retry), everything else is a
// client error.
func (h *Handler) writeQueryError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		h.counters.timeouts.Add(1)
		w.Header().Set("Retry-After", "1")
		WriteError(w, http.StatusServiceUnavailable, CodeTimeout, "query timed out")
	case errors.Is(err, context.Canceled):
		w.Header().Set("Retry-After", "1")
		WriteError(w, http.StatusServiceUnavailable, CodeCancelled, "query cancelled")
	default:
		WriteError(w, http.StatusBadRequest, CodeBadRequest, err.Error())
	}
}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.mux.ServeHTTP(w, r)
}

// ResultJSON is one scored vertex in API responses.
type ResultJSON struct {
	Node  int     `json:"node"`
	Score float64 `json:"score"`
}

// TopKResponse is the payload of /topk and /similar.
type TopKResponse struct {
	Query    int          `json:"query"`
	Results  []ResultJSON `json:"results"`
	ElapsedM float64      `json:"elapsed_ms"`
	// Stats is present on /topk?stats=1: pruning counters for the query.
	Stats *QueryStatsJSON `json:"stats,omitempty"`
	// Cache is present on /topk?stats=1: index-wide tally-cache state.
	Cache *CacheStatsJSON `json:"cache,omitempty"`
}

// QueryStatsJSON mirrors simrank.QueryStats for API responses.
type QueryStatsJSON struct {
	Candidates     int `json:"candidates"`
	PrunedByBound  int `json:"pruned_by_bound"`
	PrunedByRough  int `json:"pruned_by_rough"`
	Refined        int `json:"refined"`
	CacheHits      int `json:"cache_hits"`
	CacheMisses    int `json:"cache_misses"`
	CacheEvictions int `json:"cache_evictions"`
}

func toStatsJSON(st simrank.QueryStats) *QueryStatsJSON {
	return &QueryStatsJSON{
		Candidates:     st.Candidates,
		PrunedByBound:  st.PrunedByBound,
		PrunedByRough:  st.PrunedByRough,
		Refined:        st.Refined,
		CacheHits:      st.CacheHits,
		CacheMisses:    st.CacheMisses,
		CacheEvictions: st.CacheEvictions,
	}
}

// CacheStatsJSON reports the index-wide tally-cache state; all zero when
// the cache is disabled.
type CacheStatsJSON struct {
	Hits        int64 `json:"hits"`
	Misses      int64 `json:"misses"`
	Evictions   int64 `json:"evictions"`
	Entries     int   `json:"entries"`
	BytesInUse  int64 `json:"bytes_in_use"`
	BudgetBytes int64 `json:"budget_bytes"`
}

func toCacheJSON(st simrank.CacheStats) *CacheStatsJSON {
	return &CacheStatsJSON{
		Hits:        st.Hits,
		Misses:      st.Misses,
		Evictions:   st.Evictions,
		Entries:     st.Entries,
		BytesInUse:  st.BytesInUse,
		BudgetBytes: st.BudgetBytes,
	}
}

// PairResponse is the payload of /pair.
type PairResponse struct {
	U     int     `json:"u"`
	V     int     `json:"v"`
	Score float64 `json:"score"`
}

// StatsResponse is the payload of /stats.
type StatsResponse struct {
	Vertices       int     `json:"vertices"`
	Edges          int     `json:"edges"`
	IndexBytes     int64   `json:"index_bytes"`
	PreprocessSecs float64 `json:"preprocess_seconds"`
}

// ErrorResponse is returned with non-2xx statuses. Code is a stable
// machine-readable discriminator (see the Code* constants); Error is a
// human-readable message that may change between versions.
type ErrorResponse struct {
	Error string `json:"error"`
	Code  string `json:"code,omitempty"`
}

func (h *Handler) handleTopK(w http.ResponseWriter, r *http.Request) {
	u, ok := h.intParam(w, r, "u", -1)
	if !ok {
		return
	}
	k, ok := h.intParam(w, r, "k", 20)
	if !ok {
		return
	}
	if k <= 0 || k > h.MaxK {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("k must be in [1, %d]", h.MaxK))
		return
	}
	wantStats := r.URL.Query().Get("stats") == "1"
	h.counters.queries.Add(1)
	ctx, cancel := h.queryCtx(r)
	defer cancel()
	start := time.Now()
	resp := TopKResponse{Query: u}
	if wantStats {
		res, st, err := h.idx.TopKWithStatsCtx(ctx, u, k)
		if err != nil {
			h.writeQueryError(w, err)
			return
		}
		resp.Results = toJSON(res)
		resp.Stats = toStatsJSON(st)
		resp.Cache = toCacheJSON(h.idx.CacheStats())
	} else {
		res, err := h.idx.TopKCtx(ctx, u, k)
		if err != nil {
			h.writeQueryError(w, err)
			return
		}
		resp.Results = toJSON(res)
	}
	resp.ElapsedM = float64(time.Since(start).Microseconds()) / 1000
	writeJSON(w, http.StatusOK, resp)
}

// BatchRequest is the payload of POST /topk/batch.
type BatchRequest struct {
	Queries []int `json:"queries"`
	K       int   `json:"k"`
	// Stats requests per-query pruning/cache statistics in the response.
	Stats bool `json:"stats"`
}

// BatchResponse is the payload of POST /topk/batch: one TopKResponse per
// query, in request order, plus the index-wide cache state after the
// batch.
type BatchResponse struct {
	K        int             `json:"k"`
	Results  []TopKResponse  `json:"results"`
	ElapsedM float64         `json:"elapsed_ms"`
	Cache    *CacheStatsJSON `json:"cache,omitempty"`
}

// handleTopKBatch answers POST /topk/batch: a JSON body with a query
// slice, fanned over the index's workers against one snapshot with the
// shared tally cache. Per-query elapsed time is not reported (queries
// run concurrently); ElapsedM is the wall-clock for the whole batch.
func (h *Handler) handleTopKBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req BatchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON body: "+err.Error())
		return
	}
	if len(req.Queries) == 0 {
		writeError(w, http.StatusBadRequest, "queries must be non-empty")
		return
	}
	if len(req.Queries) > h.MaxBatch {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("batch size %d exceeds limit %d", len(req.Queries), h.MaxBatch))
		return
	}
	if req.K == 0 {
		req.K = 20
	}
	if req.K < 0 || req.K > h.MaxK {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("k must be in [1, %d]", h.MaxK))
		return
	}
	h.counters.noteBatch(len(req.Queries))
	ctx, cancel := h.queryCtx(r)
	defer cancel()
	start := time.Now()
	res, sts, err := h.idx.TopKBatchWithStatsCtx(ctx, req.Queries, req.K)
	if err != nil {
		h.writeQueryError(w, err)
		return
	}
	resp := BatchResponse{
		K:       req.K,
		Results: make([]TopKResponse, len(res)),
	}
	for i := range res {
		resp.Results[i] = TopKResponse{Query: req.Queries[i], Results: toJSON(res[i])}
		if req.Stats {
			resp.Results[i].Stats = toStatsJSON(sts[i])
		}
	}
	resp.ElapsedM = float64(time.Since(start).Microseconds()) / 1000
	if req.Stats {
		resp.Cache = toCacheJSON(h.idx.CacheStats())
	}
	writeJSON(w, http.StatusOK, resp)
}

func (h *Handler) handlePair(w http.ResponseWriter, r *http.Request) {
	u, ok := h.intParam(w, r, "u", -1)
	if !ok {
		return
	}
	v, ok := h.intParam(w, r, "v", -1)
	if !ok {
		return
	}
	h.counters.pairs.Add(1)
	ctx, cancel := h.queryCtx(r)
	defer cancel()
	score, err := h.idx.SinglePairCtx(ctx, u, v)
	if err != nil {
		h.writeQueryError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, PairResponse{U: u, V: v, Score: score})
}

func (h *Handler) handleSimilar(w http.ResponseWriter, r *http.Request) {
	u, ok := h.intParam(w, r, "u", -1)
	if !ok {
		return
	}
	theta := 0.01
	if s := r.URL.Query().Get("theta"); s != "" {
		f, err := parseTheta(s)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		theta = f
	}
	h.counters.similar.Add(1)
	ctx, cancel := h.queryCtx(r)
	defer cancel()
	start := time.Now()
	res, err := h.idx.SimilarCtx(ctx, u, theta)
	if err != nil {
		h.writeQueryError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, TopKResponse{
		Query:    u,
		Results:  toJSON(res),
		ElapsedM: float64(time.Since(start).Microseconds()) / 1000,
	})
}

// JoinPairJSON is one similarity-join pair.
type JoinPairJSON struct {
	U     int     `json:"u"`
	V     int     `json:"v"`
	Score float64 `json:"score"`
}

// JoinResponse is the payload of /join.
type JoinResponse struct {
	Theta    float64        `json:"theta"`
	Pairs    []JoinPairJSON `json:"pairs"`
	ElapsedM float64        `json:"elapsed_ms"`
}

// handleJoin runs a similarity join: GET /join?theta=0.1&max=100.
// The join queries every vertex, so MaxK also caps max here.
func (h *Handler) handleJoin(w http.ResponseWriter, r *http.Request) {
	theta := 0.1
	if s := r.URL.Query().Get("theta"); s != "" {
		f, err := parseTheta(s)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		theta = f
	}
	max, ok := h.intParam(w, r, "max", 100)
	if !ok {
		return
	}
	if max <= 0 || max > h.MaxK {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("max must be in [1, %d]", h.MaxK))
		return
	}
	ctx, cancel := h.queryCtx(r)
	defer cancel()
	start := time.Now()
	pairs, err := h.idx.SimilarityJoinCtx(ctx, theta, max)
	if err != nil {
		h.writeQueryError(w, err)
		return
	}
	out := make([]JoinPairJSON, len(pairs))
	for i, p := range pairs {
		out[i] = JoinPairJSON{U: p.U, V: p.V, Score: p.Score}
	}
	writeJSON(w, http.StatusOK, JoinResponse{
		Theta:    theta,
		Pairs:    out,
		ElapsedM: float64(time.Since(start).Microseconds()) / 1000,
	})
}

func (h *Handler) handleStats(w http.ResponseWriter, r *http.Request) {
	g := h.idx.Graph()
	st := h.idx.Stats()
	writeJSON(w, http.StatusOK, StatsResponse{
		Vertices:       g.NumVertices(),
		Edges:          g.NumEdges(),
		IndexBytes:     st.IndexBytes,
		PreprocessSecs: st.PreprocessTime.Seconds(),
	})
}

func (h *Handler) handleHealth(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

// parseTheta validates a theta query parameter.
func parseTheta(s string) (float64, error) {
	f, err := strconv.ParseFloat(s, 64)
	if err != nil || f <= 0 || f > 1 {
		return 0, errors.New("theta must be a float in (0, 1]")
	}
	return f, nil
}

// intParam parses an integer query parameter; def < 0 means required.
func (h *Handler) intParam(w http.ResponseWriter, r *http.Request, name string, def int) (int, bool) {
	s := r.URL.Query().Get(name)
	if s == "" {
		if def >= 0 {
			return def, true
		}
		writeError(w, http.StatusBadRequest, fmt.Sprintf("missing required parameter %q", name))
		return 0, false
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("parameter %q must be an integer", name))
		return 0, false
	}
	return v, true
}

func toJSON(res []simrank.Result) []ResultJSON {
	out := make([]ResultJSON, len(res))
	for i, r := range res {
		out[i] = ResultJSON{Node: r.Node, Score: r.Score}
	}
	return out
}

func writeJSON(w http.ResponseWriter, status int, payload any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(payload)
}

// WriteError writes a JSON error body with a stable code. Exported so
// the bootstrap not-ready handler (cmd/simserver) and the router speak
// the same error shape as the query handlers.
func WriteError(w http.ResponseWriter, status int, code, msg string) {
	writeJSON(w, status, ErrorResponse{Error: msg, Code: code})
}

// writeError is the bare-message form used for request validation
// failures; the code is always bad_request.
func writeError(w http.ResponseWriter, status int, msg string) {
	code := CodeBadRequest
	if status >= 500 {
		code = CodeInternal
	}
	WriteError(w, status, code, msg)
}
