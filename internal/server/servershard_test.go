package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	simrank "repro"
	"repro/internal/shard"
)

// shardTopology builds one index and a handler per shard over it, the
// in-process equivalent of a loopback topology (every shard holds the
// full snapshot).
func shardTopology(t *testing.T, shards int) (*simrank.Index, []*Handler) {
	t.Helper()
	g := simrank.GenerateCollaborationGraph(60, 4, 0.8, 7)
	idx := simrank.BuildIndex(g, simrank.DefaultOptions())
	hs := make([]*Handler, shards)
	for i := range hs {
		hs[i] = NewShard(idx, i, shards)
	}
	return idx, hs
}

func TestShardInfoEndpoint(t *testing.T) {
	idx, hs := shardTopology(t, 3)
	var ms []shard.Manifest
	for i, h := range hs {
		rec, body := get(t, h, "/shardinfo")
		if rec.Code != http.StatusOK {
			t.Fatalf("shard %d: status %d: %s", i, rec.Code, body)
		}
		var m shard.Manifest
		if err := json.Unmarshal(body, &m); err != nil {
			t.Fatal(err)
		}
		if m.Shard != i || m.NumShards != 3 || m.Vertices != idx.Graph().NumVertices() {
			t.Fatalf("shard %d manifest = %+v", i, m)
		}
		ms = append(ms, m)
	}
	if _, err := shard.ValidateTopology(ms); err != nil {
		t.Fatalf("handler manifests do not validate: %v", err)
	}
	gfp, pfp := idx.ServingFingerprint()
	if ms[0].GraphFP != gfp || ms[0].ParamsFP != pfp {
		t.Fatalf("manifest fingerprints %x/%x, index says %x/%x", ms[0].GraphFP, ms[0].ParamsFP, gfp, pfp)
	}
}

// TestShardTopKMergesToSingleNode drives the full wire path: fragments
// fetched from three shard handlers via HTTP JSON, decoded, merged —
// and compared field-for-field against the single-node /topk answer.
func TestShardTopKMergesToSingleNode(t *testing.T) {
	idx, hs := shardTopology(t, 3)
	single := New(idx)
	for _, u := range []int{0, 7, 42, 59} {
		_, body := get(t, single, fmt.Sprintf("/topk?u=%d&k=5&stats=1", u))
		var want TopKResponse
		if err := json.Unmarshal(body, &want); err != nil {
			t.Fatal(err)
		}

		frags := make([][]simrank.ShardCand, len(hs))
		for i, h := range hs {
			rec, body := get(t, h, fmt.Sprintf("/shard/topk?u=%d", u))
			if rec.Code != http.StatusOK {
				t.Fatalf("shard %d u=%d: status %d: %s", i, u, rec.Code, body)
			}
			var resp ShardTopKResponse
			if err := json.Unmarshal(body, &resp); err != nil {
				t.Fatal(err)
			}
			if resp.Shard != i {
				t.Fatalf("fragment from shard %d claims shard %d", i, resp.Shard)
			}
			frags[i] = FromWire(resp.Frag)
		}
		res, st := simrank.MergeShardTopK(5, idx.Threshold(), frags)
		if len(res) != len(want.Results) {
			t.Fatalf("u=%d: merged %d results, single node %d", u, len(res), len(want.Results))
		}
		for j, r := range res {
			if r.Node != want.Results[j].Node || r.Score != want.Results[j].Score {
				t.Fatalf("u=%d: merged result %d = %+v, single node %+v", u, j, r, want.Results[j])
			}
		}
		if st.Candidates != want.Stats.Candidates ||
			st.PrunedByBound != want.Stats.PrunedByBound ||
			st.PrunedByRough != want.Stats.PrunedByRough ||
			st.Refined != want.Stats.Refined {
			t.Fatalf("u=%d: merged scan stats %+v, single node %+v", u, st, *want.Stats)
		}
	}
}

func TestShardTopKBatchEndpoint(t *testing.T) {
	idx, hs := shardTopology(t, 2)
	rec, body := postJSON(t, hs[0], "/shard/topk/batch", `{"queries":[0,7,42]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, body)
	}
	var resp ShardBatchResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Shard != 0 || len(resp.Results) != 3 {
		t.Fatalf("resp shard=%d results=%d", resp.Shard, len(resp.Results))
	}
	// Each batch entry must equal the single-query fragment.
	for i, q := range []int{0, 7, 42} {
		_, sbody := get(t, hs[0], fmt.Sprintf("/shard/topk?u=%d", q))
		var sresp ShardTopKResponse
		if err := json.Unmarshal(sbody, &sresp); err != nil {
			t.Fatal(err)
		}
		if len(sresp.Frag) != len(resp.Results[i].Frag) {
			t.Fatalf("q=%d: batch fragment has %d entries, single %d", q, len(resp.Results[i].Frag), len(sresp.Frag))
		}
		for j := range sresp.Frag {
			if sresp.Frag[j] != resp.Results[i].Frag[j] {
				t.Fatalf("q=%d entry %d: batch %+v, single %+v", q, j, resp.Results[i].Frag[j], sresp.Frag[j])
			}
		}
	}
	_ = idx
}

func TestShardSimilarMergesToSingleNode(t *testing.T) {
	idx, hs := shardTopology(t, 3)
	single := New(idx)
	for _, u := range []int{0, 42} {
		_, body := get(t, single, fmt.Sprintf("/similar?u=%d&theta=0.02", u))
		var want TopKResponse
		if err := json.Unmarshal(body, &want); err != nil {
			t.Fatal(err)
		}
		frags := make([][]shard.Ranked, len(hs))
		for i, h := range hs {
			rec, body := get(t, h, fmt.Sprintf("/shard/similar?u=%d&theta=0.02", u))
			if rec.Code != http.StatusOK {
				t.Fatalf("shard %d: status %d: %s", i, rec.Code, body)
			}
			var resp TopKResponse
			if err := json.Unmarshal(body, &resp); err != nil {
				t.Fatal(err)
			}
			for _, r := range resp.Results {
				frags[i] = append(frags[i], shard.Ranked{Node: r.Node, Score: r.Score})
			}
		}
		got := shard.MergeTopK(0, frags)
		if len(got) != len(want.Results) {
			t.Fatalf("u=%d: merged %d results, single node %d", u, len(got), len(want.Results))
		}
		for j, r := range got {
			if r.Node != want.Results[j].Node || r.Score != want.Results[j].Score {
				t.Fatalf("u=%d: merged result %d = %+v, single node %+v", u, j, r, want.Results[j])
			}
		}
	}
}

func TestStatuszEndpoint(t *testing.T) {
	h := cachedHandler(t)
	get(t, h, "/topk?u=0&k=5")
	get(t, h, "/topk?u=1&k=5")
	postJSON(t, h, "/topk/batch", `{"queries":[0,1,2],"k":5}`)
	get(t, h, "/similar?u=0&theta=0.05")
	get(t, h, "/pair?u=0&v=1")
	get(t, h, "/topk?u=notanint&k=5") // rejected: must not count

	rec, body := get(t, h, "/statusz")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, body)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type %q", ct)
	}
	var st StatuszResponse
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.QueriesTotal != 2 || st.BatchesTotal != 1 || st.BatchQueriesTotal != 3 ||
		st.BatchSizeMax != 3 || st.SimilarTotal != 1 || st.PairsTotal != 1 {
		t.Fatalf("counters = %+v", st)
	}
	if st.Cache == nil || st.Cache.Misses == 0 {
		t.Fatalf("cache stats missing or empty: %+v", st.Cache)
	}
	if st.Shard.NumShards != 1 || st.Shard.Lo != 0 || st.Shard.Hi != st.Shard.Vertices {
		t.Fatalf("shard manifest = %+v", st.Shard)
	}
}

// TestErrorBodyCodes pins the error contract the router depends on:
// JSON Content-Type on every error path, a stable code field, and
// Retry-After on retryable 503s.
func TestErrorBodyCodes(t *testing.T) {
	h := testHandler(t)
	check := func(rec *httptest.ResponseRecorder, body []byte, status int, code string) {
		t.Helper()
		if rec.Code != status {
			t.Fatalf("status %d, want %d: %s", rec.Code, status, body)
		}
		if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
			t.Fatalf("Content-Type %q", ct)
		}
		var er ErrorResponse
		if err := json.Unmarshal(body, &er); err != nil {
			t.Fatalf("error body not JSON: %s", body)
		}
		if er.Code != code {
			t.Fatalf("code %q, want %q (%s)", er.Code, code, body)
		}
		if er.Error == "" {
			t.Fatal("empty error message")
		}
	}
	rec, body := get(t, h, "/topk?u=notanint")
	check(rec, body, http.StatusBadRequest, CodeBadRequest)
	rec, body = get(t, h, "/topk") // missing u
	check(rec, body, http.StatusBadRequest, CodeBadRequest)
	rec, body = postJSON(t, h, "/topk/batch", `{"queries":[]}`)
	check(rec, body, http.StatusBadRequest, CodeBadRequest)
	rec, body = get(t, h, "/shard/similar?u=0&theta=7")
	check(rec, body, http.StatusBadRequest, CodeBadRequest)

	// Method not allowed still carries a JSON body.
	rec, body = get(t, h, "/topk/batch")
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type %q", ct)
	}
	_ = body
}
