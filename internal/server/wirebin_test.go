package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"

	simrank "repro"
	"repro/internal/wire"
)

// getBin issues a GET with binary-response negotiation.
func getBin(t *testing.T, h http.Handler, url string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, url, nil)
	req.Header.Set("Accept", wire.ContentType)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func parseFrame(t *testing.T, body []byte) *wire.Frame {
	t.Helper()
	var f wire.Frame
	if err := f.Parse(body); err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return &f
}

// TestShardTopKBinMatchesJSON drives /shard/topk through both
// negotiated encodings and demands bit-identical fragments and stats.
func TestShardTopKBinMatchesJSON(t *testing.T) {
	_, hs := shardTopology(t, 2)
	for _, h := range hs {
		rec, body := get(t, h, "/shard/topk?u=7")
		if rec.Code != http.StatusOK {
			t.Fatalf("json status %d: %s", rec.Code, body)
		}
		var jr ShardTopKResponse
		if err := json.Unmarshal(body, &jr); err != nil {
			t.Fatal(err)
		}

		brec := getBin(t, h, "/shard/topk?u=7")
		if brec.Code != http.StatusOK {
			t.Fatalf("bin status %d: %s", brec.Code, brec.Body.String())
		}
		if ct := brec.Header().Get("Content-Type"); ct != wire.ContentType {
			t.Fatalf("Content-Type = %q, want %q", ct, wire.ContentType)
		}
		var resp wire.TopKResp
		if err := parseFrame(t, brec.Body.Bytes()).TopKResp(&resp); err != nil {
			t.Fatal(err)
		}
		if int(resp.Query) != jr.Query || int(resp.Shard) != jr.Shard {
			t.Fatalf("identity mismatch: bin (%d, %d) vs json (%d, %d)",
				resp.Query, resp.Shard, jr.Query, jr.Shard)
		}
		jfrag := FromWire(jr.Frag)
		if len(resp.Frag) != len(jfrag) {
			t.Fatalf("fragment length %d vs %d", len(resp.Frag), len(jfrag))
		}
		for i, c := range resp.Frag {
			j := jfrag[i]
			if c.V != j.V || c.State != j.State ||
				math.Float64bits(c.UB) != math.Float64bits(j.UB) ||
				math.Float64bits(c.Rough) != math.Float64bits(j.Rough) ||
				math.Float64bits(c.Score) != math.Float64bits(j.Score) {
				t.Fatalf("fragment row %d differs: bin %+v vs json %+v", i, c, j)
			}
		}
		if got, want := StatsFromWire(resp.Stats), *jr.Stats; got != simrank.QueryStats(wireStatsForTest(want)) {
			t.Fatalf("stats differ: bin %+v vs json %+v", got, want)
		}
	}
}

// wireStatsForTest lowers the JSON stats shape to QueryStats.
func wireStatsForTest(st QueryStatsJSON) simrank.QueryStats {
	return simrank.QueryStats{
		Candidates:     st.Candidates,
		PrunedByBound:  st.PrunedByBound,
		PrunedByRough:  st.PrunedByRough,
		Refined:        st.Refined,
		CacheHits:      st.CacheHits,
		CacheMisses:    st.CacheMisses,
		CacheEvictions: st.CacheEvictions,
	}
}

// TestShardBatchBinRoundTrip posts a binary batch request and checks
// the binary response against the JSON batch for the same queries.
func TestShardBatchBinRoundTrip(t *testing.T) {
	_, hs := shardTopology(t, 2)
	h := hs[0]
	m := h.Manifest()

	jrec, jbody := postJSON(t, h, "/shard/topk/batch", `{"queries":[3,9,3]}`)
	if jrec.Code != http.StatusOK {
		t.Fatalf("json status %d: %s", jrec.Code, jbody)
	}
	var jr ShardBatchResponse
	if err := json.Unmarshal(jbody, &jr); err != nil {
		t.Fatal(err)
	}

	breq := wire.BatchReq{Lo: uint32(m.Lo), Hi: uint32(m.Hi), Queries: []uint32{3, 9, 3}}
	frame := wire.AppendBatchReq(nil, &breq)
	req := httptest.NewRequest(http.MethodPost, "/shard/topk/batch", bytes.NewReader(frame))
	req.Header.Set("Content-Type", wire.ContentType)
	req.Header.Set("Accept", wire.ContentType)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("bin status %d: %s", rec.Code, rec.Body.String())
	}
	var resp wire.BatchResp
	if err := parseFrame(t, rec.Body.Bytes()).BatchResp(&resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Frags) != len(jr.Results) {
		t.Fatalf("%d fragments vs %d JSON results", len(resp.Frags), len(jr.Results))
	}
	for i, frag := range resp.Frags {
		jfrag := FromWire(jr.Results[i].Frag)
		if len(frag) != len(jfrag) {
			t.Fatalf("query %d: %d rows vs %d", i, len(frag), len(jfrag))
		}
		for k, c := range frag {
			if c != jfrag[k] {
				t.Fatalf("query %d row %d differs: %+v vs %+v", i, k, c, jfrag[k])
			}
		}
		if StatsFromWire(resp.Stats[i]) != wireStatsForTest(*jr.Results[i].Stats) {
			t.Fatalf("query %d stats differ", i)
		}
	}

	// Binary request with JSON response (no Accept header).
	req = httptest.NewRequest(http.MethodPost, "/shard/topk/batch", bytes.NewReader(frame))
	req.Header.Set("Content-Type", wire.ContentType)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("bin-req/json-resp status %d: %s", rec.Code, rec.Body.String())
	}
	var jr2 ShardBatchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &jr2); err != nil {
		t.Fatal(err)
	}
	if len(jr2.Results) != len(jr.Results) {
		t.Fatalf("mixed-mode result count %d vs %d", len(jr2.Results), len(jr.Results))
	}
	for i := range jr2.Results {
		if len(jr2.Results[i].Frag) != len(jr.Results[i].Frag) {
			t.Fatalf("mixed-mode query %d fragment length differs", i)
		}
	}
}

// TestShardSimilarBin checks the negotiated binary threshold query.
func TestShardSimilarBin(t *testing.T) {
	_, hs := shardTopology(t, 2)
	h := hs[1]
	rec, body := get(t, h, "/shard/similar?u=5&theta=0.02")
	if rec.Code != http.StatusOK {
		t.Fatalf("json status %d: %s", rec.Code, body)
	}
	var jr TopKResponse
	if err := json.Unmarshal(body, &jr); err != nil {
		t.Fatal(err)
	}
	brec := getBin(t, h, "/shard/similar?u=5&theta=0.02")
	if brec.Code != http.StatusOK {
		t.Fatalf("bin status %d: %s", brec.Code, brec.Body.String())
	}
	var resp wire.SimilarResp
	if err := parseFrame(t, brec.Body.Bytes()).SimilarResp(&resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Ranked) != len(jr.Results) {
		t.Fatalf("%d ranked vs %d JSON results", len(resp.Ranked), len(jr.Results))
	}
	for i, sn := range resp.Ranked {
		if int(sn.Node) != jr.Results[i].Node ||
			math.Float64bits(sn.Score) != math.Float64bits(jr.Results[i].Score) {
			t.Fatalf("row %d differs: bin (%d, %v) vs json (%d, %v)",
				i, sn.Node, sn.Score, jr.Results[i].Node, jr.Results[i].Score)
		}
	}
}

// binDial starts the TCP listener on a handler and returns a connected
// client plus the advertised address.
func binDial(t *testing.T, h *Handler) (net.Conn, string) {
	t.Helper()
	addr, stop, err := h.StartBin("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(stop)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn, addr
}

// TestBinTCPRoundTrip exercises the persistent TCP transport: several
// requests on one connection, matching the HTTP-JSON answers, with the
// listener address advertised on /shardinfo.
func TestBinTCPRoundTrip(t *testing.T) {
	_, hs := shardTopology(t, 2)
	h := hs[0]
	m := h.manifest
	conn, addr := binDial(t, h)

	// /shardinfo must now advertise the listener.
	_, body := get(t, h, "/shardinfo")
	var adv struct {
		BinAddr string `json:"bin_addr"`
	}
	if err := json.Unmarshal(body, &adv); err != nil {
		t.Fatal(err)
	}
	if adv.BinAddr != addr {
		t.Fatalf("shardinfo bin_addr = %q, want %q", adv.BinAddr, addr)
	}

	br := bufio.NewReader(conn)
	buf := wire.GetBuf()
	defer wire.PutBuf(buf)
	var f wire.Frame
	for try := 0; try < 3; try++ {
		out := wire.AppendTopKReq(nil, wire.TopKReq{U: 7, Lo: uint32(m.Lo), Hi: uint32(m.Hi)})
		if _, err := conn.Write(out); err != nil {
			t.Fatal(err)
		}
		data, err := wire.ReadFrame(br, buf)
		if err != nil {
			t.Fatal(err)
		}
		if err := f.Parse(data); err != nil {
			t.Fatal(err)
		}
		var resp wire.TopKResp
		if err := f.TopKResp(&resp); err != nil {
			t.Fatal(err)
		}
		_, jbody := get(t, h, "/shard/topk?u=7")
		var jr ShardTopKResponse
		if err := json.Unmarshal(jbody, &jr); err != nil {
			t.Fatal(err)
		}
		jfrag := FromWire(jr.Frag)
		if len(resp.Frag) != len(jfrag) {
			t.Fatalf("try %d: %d rows vs %d", try, len(resp.Frag), len(jfrag))
		}
		for i := range resp.Frag {
			if resp.Frag[i] != jfrag[i] {
				t.Fatalf("try %d row %d differs", try, i)
			}
		}
	}

	// A batch over the same connection.
	out := wire.AppendBatchReq(nil, &wire.BatchReq{Lo: uint32(m.Lo), Hi: uint32(m.Hi), Queries: []uint32{1, 2}})
	if _, err := conn.Write(out); err != nil {
		t.Fatal(err)
	}
	data, err := wire.ReadFrame(br, buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Parse(data); err != nil {
		t.Fatal(err)
	}
	var bresp wire.BatchResp
	if err := f.BatchResp(&bresp); err != nil {
		t.Fatal(err)
	}
	if len(bresp.Frags) != 2 || bresp.Queries[0] != 1 || bresp.Queries[1] != 2 {
		t.Fatalf("batch response shape: %d frags, queries %v", len(bresp.Frags), bresp.Queries)
	}
}

// TestBinTCPQueryErrorKeepsConn sends an out-of-range vertex, expects a
// MsgError frame, and then a valid query on the SAME connection.
func TestBinTCPQueryErrorKeepsConn(t *testing.T) {
	_, hs := shardTopology(t, 2)
	h := hs[0]
	m := h.manifest
	conn, _ := binDial(t, h)
	br := bufio.NewReader(conn)
	buf := wire.GetBuf()
	defer wire.PutBuf(buf)
	var f wire.Frame

	out := wire.AppendTopKReq(nil, wire.TopKReq{U: 1 << 20, Lo: uint32(m.Lo), Hi: uint32(m.Hi)})
	if _, err := conn.Write(out); err != nil {
		t.Fatal(err)
	}
	data, err := wire.ReadFrame(br, buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Parse(data); err != nil {
		t.Fatal(err)
	}
	var werr *wire.Error
	if !errors.As(f.Err(), &werr) {
		t.Fatalf("expected error frame, got type %d", f.Type)
	}
	if werr.Status != http.StatusBadRequest || werr.Code != CodeBadRequest {
		t.Fatalf("error frame = %+v, want 400 %s", werr, CodeBadRequest)
	}

	// The connection must still serve.
	out = wire.AppendTopKReq(nil, wire.TopKReq{U: 3, Lo: uint32(m.Lo), Hi: uint32(m.Hi)})
	if _, err := conn.Write(out); err != nil {
		t.Fatal(err)
	}
	if data, err = wire.ReadFrame(br, buf); err != nil {
		t.Fatal(err)
	}
	if err := f.Parse(data); err != nil {
		t.Fatal(err)
	}
	if f.Type != wire.MsgTopKResp {
		t.Fatalf("after error frame, got type %d, want MsgTopKResp", f.Type)
	}
}

// TestBinTCPGarbageClosesConn writes bytes that are not a frame and
// expects the server to drop the connection.
func TestBinTCPGarbageClosesConn(t *testing.T) {
	_, hs := shardTopology(t, 2)
	conn, _ := binDial(t, hs[0])
	if _, err := conn.Write([]byte("GET / HTTP/1.1\r\n\r\n")); err != nil {
		t.Fatal(err)
	}
	// Drain whatever the server sends; the read must terminate with EOF
	// rather than hang, proving the connection was closed.
	tmp := make([]byte, 4096)
	for {
		if _, err := conn.Read(tmp); err != nil {
			return
		}
	}
}

// TestStatuszWireCounters checks that binary traffic shows up in the
// wire slice of /statusz.
func TestStatuszWireCounters(t *testing.T) {
	_, hs := shardTopology(t, 2)
	h := hs[0]
	getBin(t, h, "/shard/topk?u=7")
	_, body := get(t, h, "/statusz")
	var st StatuszResponse
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Wire.BinRequestsTotal == 0 || st.Wire.BytesSent == 0 || st.Wire.EncodeNs == 0 {
		t.Fatalf("wire counters not populated: %+v", st.Wire)
	}
}
