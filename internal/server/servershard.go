package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	simrank "repro"
	"repro/internal/shard"
)

// counters are the serving counters behind /statusz. They count
// accepted queries (validation passed), so a load balancer's view of
// "work done" excludes malformed requests; query timeouts are counted
// separately.
type counters struct {
	queries      atomic.Int64 // single /topk queries
	batches      atomic.Int64 // /topk/batch requests
	batchQueries atomic.Int64 // queries carried by those batches
	batchMax     atomic.Int64 // largest accepted batch
	similar      atomic.Int64 // /similar queries
	pairs        atomic.Int64 // /pair queries
	shardQueries atomic.Int64 // /shard/topk + /shard/similar queries
	shardBatches atomic.Int64 // /shard/topk/batch requests
	timeouts     atomic.Int64 // queries cut off by QueryTimeout
	binConns     atomic.Int64 // binary TCP connections accepted
	binRequests  atomic.Int64 // shard requests answered in binary (TCP or HTTP)
	wireBytesIn  atomic.Int64 // binary frame bytes read
	wireBytesOut atomic.Int64 // binary frame bytes written
	encodeNS     atomic.Int64 // ns spent encoding binary responses
	decodeNS     atomic.Int64 // ns spent parsing binary requests
}

func (c *counters) noteBatch(size int) {
	c.batches.Add(1)
	c.batchQueries.Add(int64(size))
	storeMax(&c.batchMax, int64(size))
}

// storeMax lifts v into the atomic max register.
func storeMax(a *atomic.Int64, v int64) {
	for cur := a.Load(); v > cur; cur = a.Load() {
		if a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// StatuszResponse is the payload of /statusz: serving counters sourced
// from the per-query QueryStats plus the index-wide cache state and
// this server's shard manifest.
type StatuszResponse struct {
	QueriesTotal      int64 `json:"queries_total"`
	BatchesTotal      int64 `json:"batches_total"`
	BatchQueriesTotal int64 `json:"batch_queries_total"`
	BatchSizeMax      int64 `json:"batch_size_max"`
	SimilarTotal      int64 `json:"similar_total"`
	PairsTotal        int64 `json:"pairs_total"`
	ShardQueriesTotal int64 `json:"shard_queries_total"`
	ShardBatchesTotal int64 `json:"shard_batches_total"`
	TimeoutsTotal     int64 `json:"timeouts_total"`
	// Cache is the index-wide tally-cache lifetime state (hits, misses,
	// evictions, footprint) — the aggregate of every query's cache
	// counters since the snapshot was built.
	Cache *CacheStatsJSON `json:"cache"`
	// Prolog is the query-prolog walk-distribution cache state (nil when
	// the cache is disabled).
	Prolog *CacheStatsJSON `json:"prolog,omitempty"`
	// Wire is the binary wire-protocol activity (nil-free; all zero when
	// every request negotiated JSON).
	Wire  WireCountersJSON `json:"wire"`
	Shard shard.Manifest   `json:"shard"`
}

// WireCountersJSON is the binary-protocol slice of /statusz.
type WireCountersJSON struct {
	BinConnsTotal    int64 `json:"bin_conns_total"`
	BinRequestsTotal int64 `json:"bin_requests_total"`
	BytesReceived    int64 `json:"bytes_received"`
	BytesSent        int64 `json:"bytes_sent"`
	EncodeNs         int64 `json:"encode_ns"`
	DecodeNs         int64 `json:"decode_ns"`
}

func (h *Handler) handleStatusz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, StatuszResponse{
		QueriesTotal:      h.counters.queries.Load(),
		BatchesTotal:      h.counters.batches.Load(),
		BatchQueriesTotal: h.counters.batchQueries.Load(),
		BatchSizeMax:      h.counters.batchMax.Load(),
		SimilarTotal:      h.counters.similar.Load(),
		PairsTotal:        h.counters.pairs.Load(),
		ShardQueriesTotal: h.counters.shardQueries.Load(),
		ShardBatchesTotal: h.counters.shardBatches.Load(),
		TimeoutsTotal:     h.counters.timeouts.Load(),
		Cache:             toCacheJSON(h.idx.CacheStats()),
		Prolog:            prologJSON(h.idx),
		Wire: WireCountersJSON{
			BinConnsTotal:    h.counters.binConns.Load(),
			BinRequestsTotal: h.counters.binRequests.Load(),
			BytesReceived:    h.counters.wireBytesIn.Load(),
			BytesSent:        h.counters.wireBytesOut.Load(),
			EncodeNs:         h.counters.encodeNS.Load(),
			DecodeNs:         h.counters.decodeNS.Load(),
		},
		Shard: h.manifestView(),
	})
}

// prologJSON reports the prolog-cache state, nil when disabled.
func prologJSON(idx *simrank.Index) *CacheStatsJSON {
	st := idx.PrologStats()
	if st.BudgetBytes == 0 {
		return nil
	}
	return toCacheJSON(st)
}

// handleShardInfo publishes the manifest: GET /shardinfo.
func (h *Handler) handleShardInfo(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, h.manifestView())
}

// ShardCandJSON is one fragment entry on the wire. Keys are short —
// fragments carry every candidate of a query, typically thousands of
// entries. Rough and Score are omitted when zero; the state field says
// which of them are meaningful, and a true zero round-trips as zero.
type ShardCandJSON struct {
	V     uint32  `json:"v"`
	UB    float64 `json:"ub"`
	State uint8   `json:"st"`
	Rough float64 `json:"r,omitempty"`
	Score float64 `json:"sc,omitempty"`
}

// ToWire converts a fragment for transport. Exported (with FromWire)
// so the router and the shard serialize identically.
func ToWire(frag []simrank.ShardCand) []ShardCandJSON {
	out := make([]ShardCandJSON, len(frag))
	for i, c := range frag {
		out[i] = ShardCandJSON{V: c.V, UB: c.UB, State: c.State, Rough: c.Rough, Score: c.Score}
	}
	return out
}

// FromWire is the inverse of ToWire. Go's float64 JSON round-trip is
// exact (shortest-representation encoding), so a decoded fragment is
// bit-identical to the shard's — which the byte-identity guarantee of
// the merge replay rests on.
func FromWire(frag []ShardCandJSON) []simrank.ShardCand {
	out := make([]simrank.ShardCand, len(frag))
	for i, c := range frag {
		out[i] = simrank.ShardCand{V: c.V, UB: c.UB, State: c.State, Rough: c.Rough, Score: c.Score}
	}
	return out
}

// ShardTopKResponse is the payload of /shard/topk: the scored fragment
// for the owned vertex range, plus this shard's stats (cache counters
// matter to the router; scan counters are recomputed by the merge).
type ShardTopKResponse struct {
	Query    int             `json:"query"`
	Shard    int             `json:"shard"`
	Frag     []ShardCandJSON `json:"frag"`
	Stats    *QueryStatsJSON `json:"stats,omitempty"`
	ElapsedM float64         `json:"elapsed_ms"`
}

// rangeParams reads the optional lo/hi range override. Every server
// holds the full snapshot, so it can score any vertex range on request —
// the router uses this to hedge a slow shard or fail over a down one to
// a different server. Defaults to the owned manifest range.
func (h *Handler) rangeParams(w http.ResponseWriter, r *http.Request) (lo, hi int, ok bool) {
	lo, ok = h.intParam(w, r, "lo", h.manifest.Lo)
	if !ok {
		return 0, 0, false
	}
	hi, ok = h.intParam(w, r, "hi", h.manifest.Hi)
	if !ok {
		return 0, 0, false
	}
	if lo < 0 || hi < lo || hi > h.manifest.Vertices {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("range [%d, %d) invalid for %d vertices", lo, hi, h.manifest.Vertices))
		return 0, 0, false
	}
	return lo, hi, true
}

// handleShardTopK answers GET /shard/topk?u=42: candidates of u inside
// the owned range (or an explicit lo/hi override), scored at the fixed
// floor theta.
func (h *Handler) handleShardTopK(w http.ResponseWriter, r *http.Request) {
	u, ok := h.intParam(w, r, "u", -1)
	if !ok {
		return
	}
	lo, hi, ok := h.rangeParams(w, r)
	if !ok {
		return
	}
	h.counters.shardQueries.Add(1)
	ctx, cancel := h.queryCtx(r)
	defer cancel()
	start := time.Now()
	if wantBin(r) {
		h.shardTopKBin(ctx, w, u, lo, hi, start)
		return
	}
	frag, st, err := h.idx.TopKShardCtx(ctx, u, lo, hi)
	if err != nil {
		h.writeQueryError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, ShardTopKResponse{
		Query:    u,
		Shard:    h.manifest.Shard,
		Frag:     ToWire(frag),
		Stats:    toStatsJSON(st),
		ElapsedM: float64(time.Since(start).Microseconds()) / 1000,
	})
}

// ShardBatchRequest is the payload of POST /shard/topk/batch. Lo/Hi,
// when present, override the owned range (router failover/hedging).
type ShardBatchRequest struct {
	Queries []int `json:"queries"`
	Lo      *int  `json:"lo,omitempty"`
	Hi      *int  `json:"hi,omitempty"`
}

// ShardBatchResponse is one ShardTopKResponse per query, request order.
type ShardBatchResponse struct {
	Shard    int                 `json:"shard"`
	Results  []ShardTopKResponse `json:"results"`
	ElapsedM float64             `json:"elapsed_ms"`
}

func (h *Handler) handleShardTopKBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	if binBody(r) || wantBin(r) {
		h.handleShardBatchBin(w, r)
		return
	}
	var req ShardBatchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON body: "+err.Error())
		return
	}
	if len(req.Queries) == 0 {
		writeError(w, http.StatusBadRequest, "queries must be non-empty")
		return
	}
	if len(req.Queries) > h.MaxBatch {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("batch size %d exceeds limit %d", len(req.Queries), h.MaxBatch))
		return
	}
	lo, hi := h.manifest.Lo, h.manifest.Hi
	if req.Lo != nil {
		lo = *req.Lo
	}
	if req.Hi != nil {
		hi = *req.Hi
	}
	if lo < 0 || hi < lo || hi > h.manifest.Vertices {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("range [%d, %d) invalid for %d vertices", lo, hi, h.manifest.Vertices))
		return
	}
	h.counters.shardBatches.Add(1)
	ctx, cancel := h.queryCtx(r)
	defer cancel()
	start := time.Now()
	frags, sts, err := h.idx.TopKShardBatchCtx(ctx, req.Queries, lo, hi)
	if err != nil {
		h.writeQueryError(w, err)
		return
	}
	resp := ShardBatchResponse{
		Shard:   h.manifest.Shard,
		Results: make([]ShardTopKResponse, len(frags)),
	}
	for i := range frags {
		resp.Results[i] = ShardTopKResponse{
			Query: req.Queries[i],
			Shard: h.manifest.Shard,
			Frag:  ToWire(frags[i]),
			Stats: toStatsJSON(sts[i]),
		}
	}
	resp.ElapsedM = float64(time.Since(start).Microseconds()) / 1000
	writeJSON(w, http.StatusOK, resp)
}

// handleShardSimilar answers GET /shard/similar?u=42&theta=0.05: the
// threshold query restricted to the owned range. Fixed-floor mode, so
// per-shard result lists merge exactly with a plain best-first k-way
// merge — no fragment replay needed.
func (h *Handler) handleShardSimilar(w http.ResponseWriter, r *http.Request) {
	u, ok := h.intParam(w, r, "u", -1)
	if !ok {
		return
	}
	theta := 0.01
	if s := r.URL.Query().Get("theta"); s != "" {
		f, err := parseTheta(s)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		theta = f
	}
	lo, hi, ok := h.rangeParams(w, r)
	if !ok {
		return
	}
	h.counters.shardQueries.Add(1)
	ctx, cancel := h.queryCtx(r)
	defer cancel()
	start := time.Now()
	if wantBin(r) {
		h.shardSimilarBin(ctx, w, u, theta, lo, hi, start)
		return
	}
	res, st, err := h.idx.SimilarShardCtx(ctx, u, theta, lo, hi)
	if err != nil {
		h.writeQueryError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, TopKResponse{
		Query:    u,
		Results:  toJSON(res),
		Stats:    toStatsJSON(st),
		ElapsedM: float64(time.Since(start).Microseconds()) / 1000,
	})
}
