package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	simrank "repro"
)

func testHandler(t *testing.T) *Handler {
	t.Helper()
	g := simrank.GenerateCollaborationGraph(50, 4, 0.8, 7)
	idx := simrank.BuildIndex(g, simrank.DefaultOptions())
	return New(idx)
}

func get(t *testing.T, h http.Handler, url string) (*httptest.ResponseRecorder, []byte) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, url, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec, rec.Body.Bytes()
}

func TestTopKEndpoint(t *testing.T) {
	h := testHandler(t)
	rec, body := get(t, h, "/topk?u=0&k=5")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, body)
	}
	var resp TopKResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Query != 0 || len(resp.Results) > 5 {
		t.Fatalf("resp = %+v", resp)
	}
	for i := 1; i < len(resp.Results); i++ {
		if resp.Results[i].Score > resp.Results[i-1].Score {
			t.Fatal("unsorted results")
		}
	}
}

func TestTopKStatsParam(t *testing.T) {
	h := testHandler(t)
	rec, body := get(t, h, "/topk?u=0&k=5&stats=1")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, body)
	}
	var resp TopKResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Stats == nil {
		t.Fatal("stats=1 returned no stats")
	}
	if resp.Stats.Refined+resp.Stats.PrunedByRough+resp.Stats.PrunedByBound > resp.Stats.Candidates {
		t.Fatalf("inconsistent stats: %+v", *resp.Stats)
	}
	// Results must match the stats-free path (same seed, same query).
	_, plain := get(t, h, "/topk?u=0&k=5")
	var base TopKResponse
	if err := json.Unmarshal(plain, &base); err != nil {
		t.Fatal(err)
	}
	if len(base.Results) != len(resp.Results) {
		t.Fatalf("stats param changed results: %d vs %d", len(base.Results), len(resp.Results))
	}
	for i := range base.Results {
		if base.Results[i] != resp.Results[i] {
			t.Fatalf("stats param changed result %d", i)
		}
	}
	// Without stats=1 the field stays absent.
	if base.Stats != nil {
		t.Fatal("stats returned without stats=1")
	}
}

func TestTopKDefaultsAndValidation(t *testing.T) {
	h := testHandler(t)
	// Default k.
	rec, _ := get(t, h, "/topk?u=0")
	if rec.Code != http.StatusOK {
		t.Fatalf("default k status %d", rec.Code)
	}
	cases := []string{
		"/topk",                // missing u
		"/topk?u=abc",          // non-integer
		"/topk?u=0&k=0",        // k out of range
		"/topk?u=0&k=99999999", // k over cap
		"/topk?u=100000",       // vertex out of range
	}
	for _, url := range cases {
		rec, body := get(t, h, url)
		if rec.Code != http.StatusBadRequest {
			t.Fatalf("%s: status %d", url, rec.Code)
		}
		var er ErrorResponse
		if err := json.Unmarshal(body, &er); err != nil || er.Error == "" {
			t.Fatalf("%s: bad error payload %s", url, body)
		}
	}
}

func TestPairEndpoint(t *testing.T) {
	h := testHandler(t)
	rec, body := get(t, h, "/pair?u=1&v=1")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var resp PairResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Score != 1 {
		t.Fatalf("self pair score %v", resp.Score)
	}
	if rec, _ := get(t, h, "/pair?u=1"); rec.Code != http.StatusBadRequest {
		t.Fatal("missing v accepted")
	}
}

func TestSimilarEndpoint(t *testing.T) {
	h := testHandler(t)
	rec, body := get(t, h, "/similar?u=0&theta=0.05")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, body)
	}
	var resp TopKResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	for _, r := range resp.Results {
		if r.Score < 0.05 {
			t.Fatalf("result below theta: %+v", r)
		}
	}
	for _, url := range []string{"/similar?u=0&theta=0", "/similar?u=0&theta=2", "/similar?u=0&theta=x"} {
		if rec, _ := get(t, h, url); rec.Code != http.StatusBadRequest {
			t.Fatalf("%s accepted", url)
		}
	}
}

func TestJoinEndpoint(t *testing.T) {
	h := testHandler(t)
	rec, body := get(t, h, "/join?theta=0.05&max=10")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, body)
	}
	var resp JoinResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Pairs) > 10 {
		t.Fatalf("max ignored: %d pairs", len(resp.Pairs))
	}
	for _, p := range resp.Pairs {
		if p.U >= p.V || p.Score < 0.05 {
			t.Fatalf("bad pair %+v", p)
		}
	}
	for _, url := range []string{"/join?theta=0", "/join?theta=boo", "/join?max=0", "/join?max=1000000"} {
		if rec, _ := get(t, h, url); rec.Code != http.StatusBadRequest {
			t.Fatalf("%s accepted", url)
		}
	}
}

func TestStatsAndHealth(t *testing.T) {
	h := testHandler(t)
	rec, body := get(t, h, "/stats")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var st StatsResponse
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Vertices == 0 || st.Edges == 0 || st.IndexBytes == 0 {
		t.Fatalf("stats = %+v", st)
	}
	rec, _ = get(t, h, "/healthz")
	if rec.Code != http.StatusOK {
		t.Fatal("health check failed")
	}
	rec, _ = get(t, h, "/readyz")
	if rec.Code != http.StatusOK {
		t.Fatal("readiness check failed")
	}
}

func TestRequestContextCancellation(t *testing.T) {
	h := testHandler(t)
	// A request whose context is already cancelled must be rejected with
	// 503 (the query was cut short), not 400 (malformed) or 200.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, url := range []string{"/topk?u=0&k=5", "/pair?u=1&v=2", "/similar?u=0&theta=0.05", "/join?theta=0.05&max=10"} {
		req := httptest.NewRequest(http.MethodGet, url, nil).WithContext(ctx)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusServiceUnavailable {
			t.Fatalf("%s with cancelled context: status %d, want 503 (%s)", url, rec.Code, rec.Body.String())
		}
		var er ErrorResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil || er.Error == "" {
			t.Fatalf("%s: bad error payload %s", url, rec.Body.String())
		}
	}
	// Health and readiness ignore the query machinery entirely.
	req := httptest.NewRequest(http.MethodGet, "/readyz", nil).WithContext(ctx)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("/readyz with cancelled context: status %d", rec.Code)
	}
}

func TestQueryTimeout(t *testing.T) {
	h := testHandler(t)
	// An expired deadline surfaces as a timeout 503. QueryTimeout so small
	// the deadline has passed before the search's first context check.
	h.QueryTimeout = time.Nanosecond
	rec, body := get(t, h, "/topk?u=0&k=5")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503 (%s)", rec.Code, body)
	}
	var er ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil || er.Error != "query timed out" {
		t.Fatalf("error payload %s", body)
	}
	// A generous timeout changes nothing.
	h.QueryTimeout = time.Minute
	if rec, body := get(t, h, "/topk?u=0&k=5"); rec.Code != http.StatusOK {
		t.Fatalf("status %d with generous timeout (%s)", rec.Code, body)
	}
}

func TestConcurrentRequests(t *testing.T) {
	h := testHandler(t)
	var wg sync.WaitGroup
	errs := make(chan string, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			req := httptest.NewRequest(http.MethodGet, "/topk?u=0&k=5", nil)
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				errs <- rec.Body.String()
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatalf("concurrent request failed: %s", e)
	}
}

func postJSON(t *testing.T, h http.Handler, url, body string) (*httptest.ResponseRecorder, []byte) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, url, strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec, rec.Body.Bytes()
}

// cachedHandler builds a handler over an index with the tally cache on,
// so batch responses exercise the cache counters.
func cachedHandler(t *testing.T) *Handler {
	t.Helper()
	g := simrank.GenerateCollaborationGraph(50, 4, 0.8, 7)
	opts := simrank.DefaultOptions()
	opts.CacheBytes = 1 << 22
	return New(simrank.BuildIndex(g, opts))
}

func TestTopKBatchEndpoint(t *testing.T) {
	h := cachedHandler(t)
	rec, body := postJSON(t, h, "/topk/batch", `{"queries":[0,7,7,42],"k":5}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, body)
	}
	var resp BatchResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.K != 5 || len(resp.Results) != 4 {
		t.Fatalf("resp k=%d results=%d, want 5 and 4", resp.K, len(resp.Results))
	}
	if resp.Cache != nil {
		t.Fatal("cache reported without stats=true")
	}
	// Per-query payloads must match the singleton endpoint exactly.
	for i, u := range []int{0, 7, 7, 42} {
		if resp.Results[i].Query != u {
			t.Fatalf("result %d answers query %d, want %d", i, resp.Results[i].Query, u)
		}
		_, single := get(t, h, fmt.Sprintf("/topk?u=%d&k=5", u))
		var want TopKResponse
		if err := json.Unmarshal(single, &want); err != nil {
			t.Fatal(err)
		}
		if len(want.Results) != len(resp.Results[i].Results) {
			t.Fatalf("query %d: batch %d results vs single %d", u, len(resp.Results[i].Results), len(want.Results))
		}
		for j := range want.Results {
			if want.Results[j] != resp.Results[i].Results[j] {
				t.Fatalf("query %d result %d: batch %+v vs single %+v", u, j, resp.Results[i].Results[j], want.Results[j])
			}
		}
	}
}

func TestTopKBatchStats(t *testing.T) {
	h := cachedHandler(t)
	// Warm the cache, then ask for stats: the repeated queries must show
	// cache activity and the batch-wide cache block must be present.
	postJSON(t, h, "/topk/batch", `{"queries":[0,1,2,3],"k":5}`)
	rec, body := postJSON(t, h, "/topk/batch", `{"queries":[0,1,2,3],"k":5,"stats":true}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, body)
	}
	var resp BatchResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	hits := 0
	for i, r := range resp.Results {
		if r.Stats == nil {
			t.Fatalf("result %d missing stats", i)
		}
		hits += r.Stats.CacheHits
	}
	if hits == 0 {
		t.Fatal("warm repeat batch recorded no cache hits")
	}
	if resp.Cache == nil || resp.Cache.Hits == 0 || resp.Cache.Entries == 0 {
		t.Fatalf("implausible batch cache block: %+v", resp.Cache)
	}
	if resp.Cache.BytesInUse <= 0 || resp.Cache.BytesInUse > resp.Cache.BudgetBytes {
		t.Fatalf("cache bytes out of budget: %+v", resp.Cache)
	}
}

func TestTopKBatchValidation(t *testing.T) {
	h := testHandler(t)
	if rec, body := get(t, h, "/topk/batch"); rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET status %d: %s", rec.Code, body)
	} else if rec.Header().Get("Allow") != http.MethodPost {
		t.Fatalf("Allow = %q, want POST", rec.Header().Get("Allow"))
	}
	for _, tc := range []struct{ name, body string }{
		{"bad json", `{"queries":`},
		{"empty", `{"queries":[],"k":5}`},
		{"bad vertex", `{"queries":[0,5000],"k":5}`},
		{"bad k", `{"queries":[0],"k":-3}`},
	} {
		rec, body := postJSON(t, h, "/topk/batch", tc.body)
		if rec.Code != http.StatusBadRequest {
			t.Fatalf("%s: status %d: %s", tc.name, rec.Code, body)
		}
	}
	h.MaxBatch = 2
	if rec, body := postJSON(t, h, "/topk/batch", `{"queries":[0,1,2],"k":5}`); rec.Code != http.StatusBadRequest {
		t.Fatalf("oversize batch status %d: %s", rec.Code, body)
	}
}

func TestTopKStatsIncludesCache(t *testing.T) {
	h := cachedHandler(t)
	get(t, h, "/topk?u=0&k=5") // cold pass populates
	rec, body := get(t, h, "/topk?u=0&k=5&stats=1")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, body)
	}
	var resp TopKResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Stats == nil || resp.Cache == nil {
		t.Fatalf("stats=1 missing stats or cache block: %s", body)
	}
	if resp.Cache.Misses == 0 {
		t.Fatalf("cache block shows no activity after two queries: %+v", resp.Cache)
	}
}
