package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strings"
	"time"

	simrank "repro"
	"repro/internal/wire"
)

// Binary wire serving. The /shard/* endpoints negotiate the binary
// codec (internal/wire) via the Accept header — a router that sends
// "Accept: application/x-simrank-bin" gets a frame instead of JSON, and
// a binary Content-Type on POST /shard/topk/batch selects binary
// request decoding. Error responses stay JSON on HTTP (status codes and
// the stable error body are the contract there); on the persistent TCP
// transport (ServeBin) errors travel as MsgError frames instead.
//
// All fragment, stats and encode buffers come from per-handler pools,
// so the steady-state shard path allocates nothing per request beyond
// what the scan itself needs.

// wantBin reports whether the client negotiated a binary response.
func wantBin(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Accept"), wire.ContentType)
}

// binBody reports whether the request body is a binary frame.
func binBody(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Content-Type"), wire.ContentType)
}

// StatsToWire converts query stats for the binary codec. Exported (with
// StatsFromWire) so the router and the shard translate identically.
func StatsToWire(st simrank.QueryStats) wire.Stats {
	return wire.Stats{
		Candidates:     int64(st.Candidates),
		PrunedByBound:  int64(st.PrunedByBound),
		PrunedByRough:  int64(st.PrunedByRough),
		Refined:        int64(st.Refined),
		CacheHits:      int64(st.CacheHits),
		CacheMisses:    int64(st.CacheMisses),
		CacheEvictions: int64(st.CacheEvictions),
	}
}

// StatsFromWire is the inverse of StatsToWire.
func StatsFromWire(st wire.Stats) simrank.QueryStats {
	return simrank.QueryStats{
		Candidates:     int(st.Candidates),
		PrunedByBound:  int(st.PrunedByBound),
		PrunedByRough:  int(st.PrunedByRough),
		Refined:        int(st.Refined),
		CacheHits:      int(st.CacheHits),
		CacheMisses:    int(st.CacheMisses),
		CacheEvictions: int(st.CacheEvictions),
	}
}

// shardScratch is the pooled working set of one shard request: fragment
// and stats buffers the scans append into, and the reusable wire
// message shells. Acquire with getShardScratch, release with
// putShardScratch on every return path.
type shardScratch struct {
	frag    []simrank.ShardCand
	frags   [][]simrank.ShardCand
	sts     []simrank.QueryStats
	wireSts []wire.Stats
	ranked  []wire.ScoredNode
	qbuf    []uint32
	breq    wire.BatchReq
	tresp   wire.TopKResp
	bresp   wire.BatchResp
	sresp   wire.SimilarResp
	frame   wire.Frame
}

// ensureBatch sizes the per-query slices for n queries, reusing each
// fragment slot's capacity.
func (ss *shardScratch) ensureBatch(n int) {
	for len(ss.frags) < n {
		ss.frags = append(ss.frags, nil)
	}
	ss.frags = ss.frags[:n]
	if cap(ss.sts) < n {
		ss.sts = make([]simrank.QueryStats, n)
	}
	ss.sts = ss.sts[:n]
	if cap(ss.wireSts) < n {
		ss.wireSts = make([]wire.Stats, n)
	}
	ss.wireSts = ss.wireSts[:n]
}

func (h *Handler) getShardScratch() *shardScratch {
	return h.shardPool.Get().(*shardScratch)
}

func (h *Handler) putShardScratch(ss *shardScratch) {
	h.shardPool.Put(ss)
}

// errStatus maps a query error to the HTTP-equivalent status and stable
// code the JSON error path uses, counting timeouts identically.
func (h *Handler) errStatus(err error) (int, string) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		h.counters.timeouts.Add(1)
		return http.StatusServiceUnavailable, CodeTimeout
	case errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable, CodeCancelled
	default:
		return http.StatusBadRequest, CodeBadRequest
	}
}

// writeBinFrame writes an encoded frame as the HTTP response body.
func (h *Handler) writeBinFrame(w http.ResponseWriter, frame []byte) {
	w.Header().Set("Content-Type", wire.ContentType)
	w.WriteHeader(http.StatusOK)
	n, _ := w.Write(frame)
	h.counters.wireBytesOut.Add(int64(n))
}

// shardTopKBin is the negotiated-binary tail of handleShardTopK.
func (h *Handler) shardTopKBin(ctx context.Context, w http.ResponseWriter, u, lo, hi int, start time.Time) {
	ss := h.getShardScratch()
	defer h.putShardScratch(ss)
	frag, st, err := h.idx.TopKShardAppendCtx(ctx, u, lo, hi, ss.frag)
	if err != nil {
		h.writeQueryError(w, err)
		return
	}
	ss.frag = frag
	ss.tresp = wire.TopKResp{
		Query:     uint32(u),
		Shard:     int32(h.manifest.Shard),
		ElapsedUS: time.Since(start).Microseconds(),
		Stats:     StatsToWire(st),
		Frag:      frag,
	}
	buf := wire.GetBuf()
	defer wire.PutBuf(buf)
	t0 := time.Now()
	buf.B = wire.AppendTopKResp(buf.B[:0], &ss.tresp)
	h.counters.encodeNS.Add(time.Since(t0).Nanoseconds())
	h.counters.binRequests.Add(1)
	h.writeBinFrame(w, buf.B)
}

// shardBatchBin answers a batch whose response (and possibly request)
// is binary. us aliases the caller's query slice.
func (h *Handler) shardBatchBin(ctx context.Context, w http.ResponseWriter, us []uint32, lo, hi int, start time.Time, ss *shardScratch) {
	ss.ensureBatch(len(us))
	if err := h.idx.TopKShardBatchAppendCtx(ctx, us, lo, hi, ss.frags, ss.sts); err != nil {
		h.writeQueryError(w, err)
		return
	}
	for i, st := range ss.sts {
		ss.wireSts[i] = StatsToWire(st)
	}
	ss.bresp = wire.BatchResp{
		Shard:     int32(h.manifest.Shard),
		ElapsedUS: time.Since(start).Microseconds(),
		Queries:   us,
		Stats:     ss.wireSts,
		Frags:     ss.frags,
	}
	buf := wire.GetBuf()
	defer wire.PutBuf(buf)
	t0 := time.Now()
	buf.B = wire.AppendBatchResp(buf.B[:0], &ss.bresp)
	h.counters.encodeNS.Add(time.Since(t0).Nanoseconds())
	h.counters.binRequests.Add(1)
	h.writeBinFrame(w, buf.B)
}

// handleShardBatchBin serves POST /shard/topk/batch when either side of
// the exchange is binary: a frame body (Content-Type), a frame response
// (Accept), or both.
func (h *Handler) handleShardBatchBin(w http.ResponseWriter, r *http.Request) {
	ss := h.getShardScratch()
	defer h.putShardScratch(ss)
	var us []uint32
	var lo, hi int
	if binBody(r) {
		var ok bool
		lo, hi, ok = h.readBinBatchReq(w, r, ss)
		if !ok {
			return
		}
		us = ss.breq.Queries
	} else {
		var req ShardBatchRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, "invalid JSON body: "+err.Error())
			return
		}
		if len(req.Queries) == 0 {
			writeError(w, http.StatusBadRequest, "queries must be non-empty")
			return
		}
		if len(req.Queries) > h.MaxBatch {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("batch size %d exceeds limit %d", len(req.Queries), h.MaxBatch))
			return
		}
		lo, hi = h.manifest.Lo, h.manifest.Hi
		if req.Lo != nil {
			lo = *req.Lo
		}
		if req.Hi != nil {
			hi = *req.Hi
		}
		if lo < 0 || hi < lo || hi > h.manifest.Vertices {
			writeError(w, http.StatusBadRequest,
				fmt.Sprintf("range [%d, %d) invalid for %d vertices", lo, hi, h.manifest.Vertices))
			return
		}
		ss.qbuf = ss.qbuf[:0]
		for _, u := range req.Queries {
			if u < 0 {
				writeError(w, http.StatusBadRequest, fmt.Sprintf("vertex %d out of range", u))
				return
			}
			ss.qbuf = append(ss.qbuf, uint32(u))
		}
		us = ss.qbuf
	}
	h.counters.shardBatches.Add(1)
	ctx, cancel := h.queryCtx(r)
	defer cancel()
	start := time.Now()
	if wantBin(r) {
		h.shardBatchBin(ctx, w, us, lo, hi, start, ss)
		return
	}
	// Binary request, JSON response: answer in the JSON batch shape.
	ss.ensureBatch(len(us))
	if err := h.idx.TopKShardBatchAppendCtx(ctx, us, lo, hi, ss.frags, ss.sts); err != nil {
		h.writeQueryError(w, err)
		return
	}
	resp := ShardBatchResponse{
		Shard:   h.manifest.Shard,
		Results: make([]ShardTopKResponse, len(us)),
	}
	for i := range us {
		resp.Results[i] = ShardTopKResponse{
			Query: int(us[i]),
			Shard: h.manifest.Shard,
			Frag:  ToWire(ss.frags[i]),
			Stats: toStatsJSON(ss.sts[i]),
		}
	}
	resp.ElapsedM = float64(time.Since(start).Microseconds()) / 1000
	writeJSON(w, http.StatusOK, resp)
}

// shardSimilarBin is the negotiated-binary tail of handleShardSimilar.
func (h *Handler) shardSimilarBin(ctx context.Context, w http.ResponseWriter, u int, theta float64, lo, hi int, start time.Time) {
	ss := h.getShardScratch()
	defer h.putShardScratch(ss)
	res, st, err := h.idx.SimilarShardCtx(ctx, u, theta, lo, hi)
	if err != nil {
		h.writeQueryError(w, err)
		return
	}
	ss.ranked = ss.ranked[:0]
	for _, sc := range res {
		ss.ranked = append(ss.ranked, wire.ScoredNode{Node: uint32(sc.Node), Score: sc.Score})
	}
	ss.sresp = wire.SimilarResp{
		Query:     uint32(u),
		Shard:     int32(h.manifest.Shard),
		ElapsedUS: time.Since(start).Microseconds(),
		Stats:     StatsToWire(st),
		Ranked:    ss.ranked,
	}
	buf := wire.GetBuf()
	defer wire.PutBuf(buf)
	t0 := time.Now()
	buf.B = wire.AppendSimilarResp(buf.B[:0], &ss.sresp)
	h.counters.encodeNS.Add(time.Since(t0).Nanoseconds())
	h.counters.binRequests.Add(1)
	h.writeBinFrame(w, buf.B)
}

// readBinBatchReq decodes a binary POST /shard/topk/batch body into
// ss.breq, enforcing MaxBatch and the manifest's vertex range.
//
//lint:sanitized every decoded field is range-checked before ok returns true
func (h *Handler) readBinBatchReq(w http.ResponseWriter, r *http.Request, ss *shardScratch) (lo, hi int, ok bool) {
	buf := wire.GetBuf()
	defer wire.PutBuf(buf)
	data, err := wire.ReadFrame(r.Body, buf)
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid binary body: "+err.Error())
		return 0, 0, false
	}
	h.counters.wireBytesIn.Add(int64(len(data)))
	t0 := time.Now()
	perr := ss.frame.Parse(data)
	if perr == nil {
		perr = ss.frame.BatchReq(&ss.breq)
	}
	h.counters.decodeNS.Add(time.Since(t0).Nanoseconds())
	if perr != nil {
		writeError(w, http.StatusBadRequest, "invalid binary body: "+perr.Error())
		return 0, 0, false
	}
	if len(ss.breq.Queries) == 0 {
		writeError(w, http.StatusBadRequest, "queries must be non-empty")
		return 0, 0, false
	}
	if len(ss.breq.Queries) > h.MaxBatch {
		writeError(w, http.StatusBadRequest, "batch size exceeds limit")
		return 0, 0, false
	}
	lo, hi = int(ss.breq.Lo), int(ss.breq.Hi)
	if hi < lo || hi > h.manifest.Vertices {
		writeError(w, http.StatusBadRequest, "range invalid for graph")
		return 0, 0, false
	}
	return lo, hi, true
}

// --- persistent TCP transport ---

// ListenAndServeBin serves the binary shard protocol on addr until the
// listener fails. Start it alongside the HTTP server; the bound address
// is advertised through /shardinfo once the listener is up.
func (h *Handler) ListenAndServeBin(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return h.ServeBin(ln)
}

// StartBin begins serving the binary protocol on addr in the background
// and returns the bound address plus a closer. Used by tests and by
// simserver's bootstrap.
func (h *Handler) StartBin(addr string) (string, func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	// Store the bound address before the accept goroutine is scheduled,
	// so a /shardinfo probe racing the bootstrap still sees it.
	h.binAddr.Store(ln.Addr().String())
	go h.ServeBin(ln)
	return ln.Addr().String(), func() { ln.Close() }, nil
}

// ServeBin accepts persistent binary-protocol connections on ln. One
// frame in, one frame out, in order, per connection; protocol errors
// close the connection, query errors answer with MsgError and keep it.
func (h *Handler) ServeBin(ln net.Listener) error {
	h.binAddr.Store(ln.Addr().String())
	//lint:ignore ctxflow accept loop lives for the listener; closing the listener unblocks Accept and ends it
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		go h.serveBinConn(conn)
	}
}

// binQueryCtx bounds one TCP-transport query: there is no request
// context to inherit, so QueryTimeout alone applies.
func (h *Handler) binQueryCtx() (context.Context, context.CancelFunc) {
	if h.QueryTimeout > 0 {
		return context.WithTimeout(context.Background(), h.QueryTimeout)
	}
	return context.Background(), func() {}
}

func (h *Handler) serveBinConn(conn net.Conn) {
	defer conn.Close()
	h.counters.binConns.Add(1)
	rbuf := wire.GetBuf()
	defer wire.PutBuf(rbuf)
	wbuf := wire.GetBuf()
	defer wire.PutBuf(wbuf)
	ss := h.getShardScratch()
	defer h.putShardScratch(ss)
	br := bufio.NewReaderSize(conn, 64<<10)
	//lint:ignore ctxflow read loop lives for the connection; each query inside runs under binQueryCtx, and closing the conn unblocks the read
	for {
		data, err := wire.ReadFrame(br, rbuf)
		if err != nil {
			// io.EOF is the clean close; a frame error means the stream
			// desynchronized — either way the connection is done. Tell a
			// still-listening peer why before dropping it.
			if errors.Is(err, wire.ErrFrame) {
				wbuf.B = wire.AppendError(wbuf.B[:0], http.StatusBadRequest, CodeBadRequest, err.Error())
				conn.Write(wbuf.B)
			}
			return
		}
		h.counters.wireBytesIn.Add(int64(len(data)))
		if !h.serveBinFrame(conn, data, ss, wbuf) {
			return
		}
	}
}

// serveBinFrame answers one frame; false means the connection must
// close (protocol breakdown or a dead peer).
func (h *Handler) serveBinFrame(conn net.Conn, data []byte, ss *shardScratch, wbuf *wire.Buf) bool {
	t0 := time.Now()
	if err := ss.frame.Parse(data); err != nil {
		wbuf.B = wire.AppendError(wbuf.B[:0], http.StatusBadRequest, CodeBadRequest, err.Error())
		conn.Write(wbuf.B)
		return false
	}
	var encStart time.Time
	switch ss.frame.Type {
	case wire.MsgTopKReq:
		req, err := ss.frame.TopKReq()
		h.counters.decodeNS.Add(time.Since(t0).Nanoseconds())
		if err != nil {
			return h.binError(conn, wbuf, http.StatusBadRequest, CodeBadRequest, err.Error())
		}
		h.counters.shardQueries.Add(1)
		h.counters.binRequests.Add(1)
		ctx, cancel := h.binQueryCtx()
		start := time.Now()
		frag, st, qerr := h.idx.TopKShardAppendCtx(ctx, int(req.U), int(req.Lo), int(req.Hi), ss.frag)
		cancel()
		if qerr != nil {
			status, code := h.errStatus(qerr)
			return h.binError(conn, wbuf, status, code, qerr.Error())
		}
		ss.frag = frag
		ss.tresp = wire.TopKResp{
			Query:     req.U,
			Shard:     int32(h.manifest.Shard),
			ElapsedUS: time.Since(start).Microseconds(),
			Stats:     StatsToWire(st),
			Frag:      frag,
		}
		encStart = time.Now()
		wbuf.B = wire.AppendTopKResp(wbuf.B[:0], &ss.tresp)

	case wire.MsgBatchReq:
		err := ss.frame.BatchReq(&ss.breq)
		h.counters.decodeNS.Add(time.Since(t0).Nanoseconds())
		if err != nil {
			return h.binError(conn, wbuf, http.StatusBadRequest, CodeBadRequest, err.Error())
		}
		if len(ss.breq.Queries) == 0 || len(ss.breq.Queries) > h.MaxBatch {
			return h.binError(conn, wbuf, http.StatusBadRequest, CodeBadRequest, "batch size out of range")
		}
		lo, hi := int(ss.breq.Lo), int(ss.breq.Hi)
		if hi < lo || hi > h.manifest.Vertices {
			return h.binError(conn, wbuf, http.StatusBadRequest, CodeBadRequest, "range invalid for graph")
		}
		h.counters.shardBatches.Add(1)
		h.counters.binRequests.Add(1)
		ctx, cancel := h.binQueryCtx()
		start := time.Now()
		ss.ensureBatch(len(ss.breq.Queries))
		qerr := h.idx.TopKShardBatchAppendCtx(ctx, ss.breq.Queries, lo, hi, ss.frags, ss.sts)
		cancel()
		if qerr != nil {
			status, code := h.errStatus(qerr)
			return h.binError(conn, wbuf, status, code, qerr.Error())
		}
		for i, st := range ss.sts {
			ss.wireSts[i] = StatsToWire(st)
		}
		ss.bresp = wire.BatchResp{
			Shard:     int32(h.manifest.Shard),
			ElapsedUS: time.Since(start).Microseconds(),
			Queries:   ss.breq.Queries,
			Stats:     ss.wireSts,
			Frags:     ss.frags,
		}
		encStart = time.Now()
		wbuf.B = wire.AppendBatchResp(wbuf.B[:0], &ss.bresp)

	case wire.MsgSimilarReq:
		req, err := ss.frame.SimilarReq()
		h.counters.decodeNS.Add(time.Since(t0).Nanoseconds())
		if err != nil {
			return h.binError(conn, wbuf, http.StatusBadRequest, CodeBadRequest, err.Error())
		}
		if req.Theta <= 0 || req.Theta > 1 {
			return h.binError(conn, wbuf, http.StatusBadRequest, CodeBadRequest, "theta must be in (0, 1]")
		}
		h.counters.shardQueries.Add(1)
		h.counters.binRequests.Add(1)
		ctx, cancel := h.binQueryCtx()
		start := time.Now()
		res, st, qerr := h.idx.SimilarShardCtx(ctx, int(req.U), req.Theta, int(req.Lo), int(req.Hi))
		cancel()
		if qerr != nil {
			status, code := h.errStatus(qerr)
			return h.binError(conn, wbuf, status, code, qerr.Error())
		}
		ss.ranked = ss.ranked[:0]
		for _, sc := range res {
			ss.ranked = append(ss.ranked, wire.ScoredNode{Node: uint32(sc.Node), Score: sc.Score})
		}
		ss.sresp = wire.SimilarResp{
			Query:     req.U,
			Shard:     int32(h.manifest.Shard),
			ElapsedUS: time.Since(start).Microseconds(),
			Stats:     StatsToWire(st),
			Ranked:    ss.ranked,
		}
		encStart = time.Now()
		wbuf.B = wire.AppendSimilarResp(wbuf.B[:0], &ss.sresp)

	default:
		return h.binError(conn, wbuf, http.StatusBadRequest, CodeBadRequest, "unsupported message type")
	}
	h.counters.encodeNS.Add(time.Since(encStart).Nanoseconds())
	n, err := conn.Write(wbuf.B)
	h.counters.wireBytesOut.Add(int64(n))
	return err == nil
}

// binError ships a query failure as a MsgError frame; true keeps the
// connection serving.
func (h *Handler) binError(conn net.Conn, wbuf *wire.Buf, status int, code, msg string) bool {
	wbuf.B = wire.AppendError(wbuf.B[:0], status, code, msg)
	n, err := conn.Write(wbuf.B)
	h.counters.wireBytesOut.Add(int64(n))
	return err == nil
}
