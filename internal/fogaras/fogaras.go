// Package fogaras implements the Monte-Carlo single-pair / single-source
// SimRank algorithm of Fogaras and Rácz (WWW 2005), the state-of-the-art
// comparator in Section 8.3 of the paper.
//
// The method precomputes, for every vertex, R' reversed random walks of
// length T under the random surfer-pair model (eq. 2–3): SimRank is
// s(u,v) = E[c^τ] where τ is the first meeting time of coupled walks from
// u and v. Walks are *coalescing* — at step t every vertex uses the same
// random successor function f_{r,t} — so walks that meet stay together,
// exactly as in the fingerprint-tree formulation.
//
// The index stores the full fingerprint paths: n·R'·T positions. That
// O(n·R') footprint is the scalability bottleneck the paper exploits in
// its comparison, and this package reproduces it faithfully, including
// up-front memory-budget accounting that yields the "failed to allocate"
// cells of Table 4.
package fogaras

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/graph"
)

// Dead marks a walk that reached a vertex without in-links.
const Dead = graph.NoVertex

// ErrMemoryBudget is returned when the fingerprint index would exceed the
// configured budget; this reproduces the allocation failures reported for
// the algorithm on large graphs.
type ErrMemoryBudget struct {
	Need, Budget int64
}

func (e *ErrMemoryBudget) Error() string {
	return fmt.Sprintf("fogaras: fingerprint index needs %d bytes, budget %d", e.Need, e.Budget)
}

// Params configures the comparator. The paper's experiments use R' = 100
// and the same c and T as the proposed algorithm.
type Params struct {
	C    float64
	T    int
	R    int // number of fingerprints (R' in the papers)
	Seed uint64
	// MemoryBudget bounds the fingerprint index size in bytes;
	// 0 means unlimited.
	MemoryBudget int64
}

// DefaultParams mirrors Section 8.3: R' = 100, c = 0.6, T = 11.
func DefaultParams() Params {
	return Params{C: 0.6, T: 11, R: 100, Seed: 1}
}

// Index is the precomputed fingerprint set.
type Index struct {
	g *graph.Graph
	p Params
	// paths[(v*R + r)*T + (t-1)] is the position of fingerprint r of
	// vertex v after t steps (Dead once the walk leaves the graph).
	paths []uint32
	// groups indexes vertices by terminal signature per sample, making
	// single-source queries output-sensitive (see groups.go).
	groups []sampleGroups

	PreprocessTime time.Duration
}

// PredictBytes returns the index size the build would allocate: the
// fingerprint paths plus the per-sample terminal-signature groups.
func PredictBytes(n int, p Params) int64 {
	paths := int64(n) * int64(p.R) * int64(p.T) * 4
	groups := int64(n) * int64(p.R) * 12 // key (8) + id (4) per entry
	return paths + groups
}

// Build generates the fingerprints. It fails with *ErrMemoryBudget when
// the index would exceed p.MemoryBudget.
func Build(g *graph.Graph, p Params) (*Index, error) {
	if p.R <= 0 || p.T <= 0 {
		return nil, fmt.Errorf("fogaras: invalid params R=%d T=%d", p.R, p.T)
	}
	need := PredictBytes(g.N(), p)
	if p.MemoryBudget > 0 && need > p.MemoryBudget {
		return nil, &ErrMemoryBudget{Need: need, Budget: p.MemoryBudget}
	}
	//lint:ignore norand PreprocessTime is a reported statistic, never an algorithm input
	start := time.Now()
	n := g.N()
	idx := &Index{g: g, p: p, paths: make([]uint32, n*p.R*p.T)}
	cur := make([]uint32, n)
	for r := 0; r < p.R; r++ {
		for v := range cur {
			cur[v] = uint32(v)
		}
		for t := 1; t <= p.T; t++ {
			for v := 0; v < n; v++ {
				pos := cur[v]
				if pos != Dead {
					cur[v] = successor(g, p.Seed, uint64(r), uint64(t), pos)
				}
				idx.paths[(v*p.R+r)*p.T+(t-1)] = cur[v]
			}
		}
	}
	idx.buildGroups()
	//lint:ignore norand see above: timing is reporting-only
	idx.PreprocessTime = time.Since(start)
	return idx, nil
}

// successor is the coalescing per-step random successor function f_{r,t}:
// every walk at vertex v at step t moves to the same random in-neighbour,
// chosen by hashing (seed, r, t, v). Walks that meet therefore never
// separate, as required by the random surfer-pair coupling.
func successor(g *graph.Graph, seed, r, t uint64, v uint32) uint32 {
	in := g.In(v)
	if len(in) == 0 {
		return Dead
	}
	h := mix(seed ^ mix(r+1) ^ mix(t+0x9e37) ^ mix(uint64(v)+0xabcd))
	return in[h%uint64(len(in))]
}

// mix is the splitmix64 finalizer.
func mix(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// path returns fingerprint r of vertex v (positions after steps 1..T).
func (x *Index) path(v uint32, r int) []uint32 {
	base := (int(v)*x.p.R + r) * x.p.T
	return x.paths[base : base+x.p.T]
}

// Bytes returns the index footprint.
func (x *Index) Bytes() int64 {
	total := int64(len(x.paths)) * 4
	for _, g := range x.groups {
		total += int64(len(g.keys))*8 + int64(len(g.ids))*4
	}
	return total
}

// SinglePair estimates s(u, v) = E[c^τ]: the average over fingerprints of
// c to the first meeting time (0 if the walks never meet within T steps).
func (x *Index) SinglePair(u, v uint32) float64 {
	if u == v {
		return 1
	}
	sum := 0.0
	for r := 0; r < x.p.R; r++ {
		pu, pv := x.path(u, r), x.path(v, r)
		ct := x.p.C
		for t := 0; t < x.p.T; t++ {
			a, b := pu[t], pv[t]
			if a == Dead || b == Dead {
				break
			}
			if a == b {
				sum += ct
				break
			}
			ct *= x.p.C
		}
	}
	return sum / float64(x.p.R)
}

// SingleSource estimates s(u, v) for every v. The terminal-signature
// groups make this output-sensitive: per sample, only the vertices whose
// walks actually meet u's walk are visited (O(R·(log n + hits·log T))),
// which is what makes the method's query phase fast in Table 4 — at the
// price of the O(n·R) index that ultimately limits its scalability.
func (x *Index) SingleSource(u uint32) []float64 {
	n := x.g.N()
	out := make([]float64, n)
	out[u] = 1
	invR := 1.0 / float64(x.p.R)
	for r := 0; r < x.p.R; r++ {
		key := x.terminalKey(u, r)
		la := int(key >> 32)
		if la == 0 {
			continue // u's walk died immediately; meets nothing
		}
		for _, v := range x.groups[r].group(key) {
			if v == u {
				continue
			}
			tau := x.meetingTime(u, v, r, la)
			if tau > 0 {
				out[v] += pow(x.p.C, tau) * invR
			}
		}
	}
	return out
}

// pow is a small integer power helper (T is tiny; math.Pow is overkill).
func pow(c float64, k int) float64 {
	out := 1.0
	for i := 0; i < k; i++ {
		out *= c
	}
	return out
}

// TopK returns the k most similar vertices to u, best first.
func (x *Index) TopK(u uint32, k int) []Scored {
	scores := x.SingleSource(u)
	return topK(scores, u, k)
}

// Threshold returns every vertex with estimated score at least theta,
// best first; used by the accuracy comparison of Section 8.2.
func (x *Index) Threshold(u uint32, theta float64) []Scored {
	scores := x.SingleSource(u)
	var out []Scored
	for v, s := range scores {
		if uint32(v) != u && s >= theta {
			out = append(out, Scored{uint32(v), s})
		}
	}
	sortScored(out)
	return out
}

// Scored pairs a vertex with its estimated score.
type Scored struct {
	V     uint32
	Score float64
}

func topK(scores []float64, u uint32, k int) []Scored {
	if k <= 0 {
		return nil
	}
	var out []Scored
	for v, s := range scores {
		if uint32(v) == u || s == 0 {
			continue
		}
		out = append(out, Scored{uint32(v), s})
	}
	sortScored(out)
	if len(out) > k {
		out = out[:k]
	}
	return out
}

func sortScored(xs []Scored) {
	sort.Slice(xs, func(i, j int) bool {
		if xs[i].Score != xs[j].Score {
			return xs[i].Score > xs[j].Score
		}
		return xs[i].V < xs[j].V
	})
}
