package fogaras

import (
	"errors"
	"math"
	"testing"

	"repro/internal/exact"
	"repro/internal/graph"
)

func build(t *testing.T, g *graph.Graph, R int, c float64) *Index {
	t.Helper()
	p := DefaultParams()
	p.R = R
	p.C = c
	p.T = 15
	idx, err := Build(g, p)
	if err != nil {
		t.Fatal(err)
	}
	return idx
}

func TestSinglePairConvergesToSimRank(t *testing.T) {
	// E[c^τ] is exactly SimRank (random surfer-pair model), so with many
	// fingerprints the estimate approaches the converged matrix.
	g := graph.Collaboration(40, 5, 0.8, 15, 2)
	idx := build(t, g, 4000, 0.6)
	truth := exact.PartialSumsAllPairs(g, 0.6, 25)
	worst := 0.0
	checked := 0
	for u := uint32(0); int(u) < g.N(); u += 3 {
		for v := u + 1; int(v) < g.N(); v += 5 {
			got := idx.SinglePair(u, v)
			want := truth.At(int(u), int(v))
			if d := math.Abs(got - want); d > worst {
				worst = d
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no pairs checked")
	}
	if worst > 0.06 {
		t.Fatalf("worst deviation from exact SimRank: %v", worst)
	}
}

func TestSelfSimilarityIsOne(t *testing.T) {
	g := graph.ErdosRenyi(20, 60, 1)
	idx := build(t, g, 50, 0.6)
	for v := uint32(0); v < 20; v++ {
		if idx.SinglePair(v, v) != 1 {
			t.Fatalf("s(%d,%d) != 1", v, v)
		}
	}
}

func TestCoalescingWalks(t *testing.T) {
	// Once two fingerprints of the same sample meet, they must stay
	// together: the successor function depends only on (r, t, position).
	g := graph.PreferentialAttachment(60, 3, 0.3, 4)
	idx := build(t, g, 30, 0.6)
	for u := uint32(0); u < 20; u++ {
		for v := u + 1; v < 20; v++ {
			for r := 0; r < idx.p.R; r++ {
				pu, pv := idx.path(u, r), idx.path(v, r)
				met := false
				for tt := 0; tt < idx.p.T; tt++ {
					if pu[tt] == Dead || pv[tt] == Dead {
						break
					}
					if met && pu[tt] != pv[tt] {
						t.Fatalf("walks separated after meeting: u=%d v=%d r=%d t=%d", u, v, r, tt)
					}
					if pu[tt] == pv[tt] {
						met = true
					}
				}
			}
		}
	}
}

func TestSingleSourceMatchesSinglePair(t *testing.T) {
	g := graph.CopyingModel(80, 4, 0.3, 6)
	idx := build(t, g, 40, 0.6)
	u := uint32(7)
	row := idx.SingleSource(u)
	for v := uint32(0); int(v) < g.N(); v += 7 {
		if v == u {
			continue
		}
		if got := idx.SinglePair(u, v); got != row[v] {
			t.Fatalf("single source (%d,%d): %v vs %v", u, v, row[v], got)
		}
	}
	if row[u] != 1 {
		t.Fatal("self score not 1")
	}
}

// bruteSingleSource is the O(n·R·T) reference the grouped query must
// match exactly.
func bruteSingleSource(x *Index, u uint32) []float64 {
	n := x.g.N()
	out := make([]float64, n)
	out[u] = 1
	for v := uint32(0); int(v) < n; v++ {
		if v != u {
			out[v] = x.SinglePair(u, v)
		}
	}
	return out
}

func TestGroupedSingleSourceMatchesBruteForce(t *testing.T) {
	g := graph.Collaboration(50, 5, 0.8, 20, 4)
	idx := build(t, g, 60, 0.6)
	for _, u := range []uint32{0, 3, 17, uint32(g.N() - 1)} {
		fast := idx.SingleSource(u)
		slow := bruteSingleSource(idx, u)
		for v := range fast {
			// Summation order differs between the two paths, so allow
			// last-ULP float drift.
			if math.Abs(fast[v]-slow[v]) > 1e-12 {
				t.Fatalf("u=%d v=%d: grouped %v vs brute %v", u, v, fast[v], slow[v])
			}
		}
	}
}

func TestTerminalKeyGrouping(t *testing.T) {
	g := graph.CopyingModel(100, 4, 0.3, 3)
	idx := build(t, g, 20, 0.6)
	// Two vertices meet in sample r iff their terminal keys match;
	// cross-check against direct path comparison.
	for r := 0; r < 5; r++ {
		for u := uint32(0); u < 30; u++ {
			for v := u + 1; v < 30; v++ {
				met := false
				pu, pv := idx.path(u, r), idx.path(v, r)
				for tt := 0; tt < idx.p.T; tt++ {
					if pu[tt] == Dead || pv[tt] == Dead {
						break
					}
					if pu[tt] == pv[tt] {
						met = true
						break
					}
				}
				keysEqual := idx.terminalKey(u, r) == idx.terminalKey(v, r)
				if met != keysEqual {
					t.Fatalf("u=%d v=%d r=%d: met=%v keysEqual=%v", u, v, r, met, keysEqual)
				}
			}
		}
	}
}

func TestTopKSortedAndBounded(t *testing.T) {
	g := graph.Collaboration(60, 5, 0.8, 20, 8)
	idx := build(t, g, 60, 0.6)
	res := idx.TopK(0, 5)
	if len(res) > 5 {
		t.Fatalf("returned %d", len(res))
	}
	for i := 1; i < len(res); i++ {
		if res[i].Score > res[i-1].Score {
			t.Fatal("unsorted results")
		}
	}
	for _, s := range res {
		if s.V == 0 {
			t.Fatal("self in results")
		}
	}
}

func TestThreshold(t *testing.T) {
	g := graph.Collaboration(60, 5, 0.8, 20, 9)
	idx := build(t, g, 60, 0.6)
	res := idx.Threshold(1, 0.05)
	for _, s := range res {
		if s.Score < 0.05 {
			t.Fatalf("threshold result below theta: %v", s)
		}
	}
}

func TestMemoryBudget(t *testing.T) {
	g := graph.ErdosRenyi(1000, 4000, 1)
	p := DefaultParams()
	p.MemoryBudget = 1000 // absurdly small
	_, err := Build(g, p)
	var mb *ErrMemoryBudget
	if !errors.As(err, &mb) {
		t.Fatalf("expected ErrMemoryBudget, got %v", err)
	}
	if mb.Need != PredictBytes(g.N(), p) {
		t.Fatalf("need mismatch: %d vs %d", mb.Need, PredictBytes(g.N(), p))
	}
	if mb.Error() == "" {
		t.Fatal("empty error string")
	}
}

func TestPredictBytesMatchesActual(t *testing.T) {
	g := graph.ErdosRenyi(100, 300, 2)
	p := DefaultParams()
	idx, err := Build(g, p)
	if err != nil {
		t.Fatal(err)
	}
	if idx.Bytes() != PredictBytes(g.N(), p) {
		t.Fatalf("bytes %d != predicted %d", idx.Bytes(), PredictBytes(g.N(), p))
	}
}

func TestInvalidParams(t *testing.T) {
	g := graph.ErdosRenyi(10, 20, 1)
	if _, err := Build(g, Params{C: 0.6, T: 0, R: 10}); err == nil {
		t.Fatal("expected error for T=0")
	}
	if _, err := Build(g, Params{C: 0.6, T: 5, R: 0}); err == nil {
		t.Fatal("expected error for R=0")
	}
}

func TestDanglingWalksNeverMatch(t *testing.T) {
	g := graph.DirectedStar(5)
	idx := build(t, g, 100, 0.6)
	// Leaves have no in-links: their walks die immediately and never
	// meet anything.
	if got := idx.SinglePair(1, 2); got != 0 {
		t.Fatalf("s(1,2) = %v, want 0", got)
	}
}

func TestDeterministicAcrossBuilds(t *testing.T) {
	g := graph.CopyingModel(80, 4, 0.3, 5)
	p := DefaultParams()
	a, err := Build(g, p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(g, p)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.paths {
		if a.paths[i] != b.paths[i] {
			t.Fatal("fingerprints differ across identical builds")
		}
	}
}
