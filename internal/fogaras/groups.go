package fogaras

import "sort"

// Coalescing walks meet if and only if they end in the same place: once
// two fingerprints of the same sample coincide they share the successor
// function and never separate, so walks u and v of sample r meet within
// T steps exactly when their terminal signatures — (last alive step,
// position at that step) — are equal. Grouping vertices by terminal
// signature at build time makes single-source queries output-sensitive:
// only the vertices that actually meet the query's walks are touched,
// mirroring the efficiency of the original fingerprint-tree layout.

// terminalKey packs (last alive step, position) into one comparable key.
// A walk that dies immediately has la = 0 and position = the start
// vertex, so it can only ever "meet" itself.
func (x *Index) terminalKey(v uint32, r int) uint64 {
	p := x.path(v, r)
	la := 0
	pos := v
	for t := x.p.T - 1; t >= 0; t-- {
		if p[t] != Dead {
			la = t + 1
			pos = p[t]
			break
		}
	}
	return uint64(la)<<32 | uint64(pos)
}

// sampleGroups holds, for one sample r, the vertex IDs sorted by terminal
// key, with a parallel sorted key array for binary search.
type sampleGroups struct {
	keys []uint64 // sorted
	ids  []uint32 // ids[i] has terminal key keys[i]
}

// buildGroups constructs the per-sample terminal-signature groups.
func (x *Index) buildGroups() {
	n := x.g.N()
	x.groups = make([]sampleGroups, x.p.R)
	for r := 0; r < x.p.R; r++ {
		keys := make([]uint64, n)
		ids := make([]uint32, n)
		for v := 0; v < n; v++ {
			keys[v] = x.terminalKey(uint32(v), r)
			ids[v] = uint32(v)
		}
		sort.Sort(&keyIDSorter{keys, ids})
		x.groups[r] = sampleGroups{keys: keys, ids: ids}
	}
}

// group returns the vertices sharing the given terminal key in sample r.
func (g *sampleGroups) group(key uint64) []uint32 {
	lo := sort.Search(len(g.keys), func(i int) bool { return g.keys[i] >= key })
	hi := lo
	for hi < len(g.keys) && g.keys[hi] == key {
		hi++
	}
	return g.ids[lo:hi]
}

// keyIDSorter sorts two parallel slices by key.
type keyIDSorter struct {
	keys []uint64
	ids  []uint32
}

func (s *keyIDSorter) Len() int           { return len(s.keys) }
func (s *keyIDSorter) Less(i, j int) bool { return s.keys[i] < s.keys[j] }
func (s *keyIDSorter) Swap(i, j int) {
	s.keys[i], s.keys[j] = s.keys[j], s.keys[i]
	s.ids[i], s.ids[j] = s.ids[j], s.ids[i]
}

// meetingTime returns the first step at which the coalescing walks of u
// and v (sample r) coincide, or -1 when they never meet. Callers ensure
// the terminal keys match, so the walks are both alive through la and the
// equality predicate over steps is monotone — binary search applies.
func (x *Index) meetingTime(u, v uint32, r int, la int) int {
	if u == v {
		return 0
	}
	if la == 0 {
		return -1
	}
	pu, pv := x.path(u, r), x.path(v, r)
	// Find the smallest t in [1, la] with pu[t-1] == pv[t-1].
	lo, hi := 1, la
	for lo < hi {
		mid := (lo + hi) / 2
		if pu[mid-1] == pv[mid-1] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	if pu[lo-1] == pv[lo-1] {
		return lo
	}
	return -1
}
