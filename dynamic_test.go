package simrank

import (
	"bytes"
	"testing"
)

func TestSaveLoadIndexPublicAPI(t *testing.T) {
	g := GenerateWebGraph(500, 4, 0.3, 7)
	opts := DefaultOptions()
	idx := BuildIndex(g, opts)

	var buf bytes.Buffer
	if err := idx.SaveIndex(&buf); err != nil {
		t.Fatal(err)
	}
	idx2, err := LoadIndex(g, opts, &buf)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 10; u++ {
		a, err := idx.TopK(u, 5)
		if err != nil {
			t.Fatal(err)
		}
		b, err := idx2.TopK(u, 5)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("u=%d: lengths differ", u)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("u=%d: %v vs %v", u, a[i], b[i])
			}
		}
	}
}

func TestLoadIndexWrongGraph(t *testing.T) {
	g := GenerateWebGraph(500, 4, 0.3, 7)
	idx := BuildIndex(g, DefaultOptions())
	var buf bytes.Buffer
	if err := idx.SaveIndex(&buf); err != nil {
		t.Fatal(err)
	}
	other := GenerateWebGraph(501, 4, 0.3, 7)
	if _, err := LoadIndex(other, DefaultOptions(), &buf); err == nil {
		t.Fatal("expected error for mismatched graph")
	}
}

func TestDynamicIndexLifecycle(t *testing.T) {
	dx := NewDynamicIndex(6, DefaultOptions())
	for _, src := range []int{1, 2, 3} {
		if err := dx.AddEdge(src, 4); err != nil {
			t.Fatal(err)
		}
		if err := dx.AddEdge(src, 5); err != nil {
			t.Fatal(err)
		}
	}
	if dx.NumVertices() != 6 || dx.NumEdges() != 6 {
		t.Fatalf("n=%d m=%d", dx.NumVertices(), dx.NumEdges())
	}
	if dx.PendingUpdates() == 0 {
		t.Fatal("updates should be pending before first query")
	}
	top, err := dx.TopK(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) == 0 || top[0].Node != 5 {
		t.Fatalf("TopK(4) = %v", top)
	}
	if dx.PendingUpdates() != 0 {
		t.Fatal("query should have flushed updates")
	}

	// Self similarity and symmetric positivity.
	s, err := dx.SinglePair(4, 4)
	if err != nil || s != 1 {
		t.Fatalf("self similarity %v err %v", s, err)
	}
	s45, err := dx.SinglePair(4, 5)
	if err != nil || s45 <= 0 {
		t.Fatalf("s(4,5) = %v err %v", s45, err)
	}
}

func TestDynamicIndexFromGraph(t *testing.T) {
	g := GenerateCollaborationGraph(50, 4, 0.8, 3)
	dx := NewDynamicIndexFrom(g, DefaultOptions())
	if dx.NumEdges() != g.NumEdges() {
		t.Fatalf("edges %d vs %d", dx.NumEdges(), g.NumEdges())
	}
	if err := dx.Refresh(); err != nil {
		t.Fatal(err)
	}
	if _, err := dx.TopK(0, 5); err != nil {
		t.Fatal(err)
	}
}

func TestDynamicIndexErrors(t *testing.T) {
	dx := NewDynamicIndex(3, DefaultOptions())
	if _, err := dx.TopK(5, 2); err == nil {
		t.Fatal("expected range error")
	}
	if _, err := dx.SinglePair(-1, 0); err == nil {
		t.Fatal("expected range error")
	}
	if _, err := dx.SinglePair(0, 9); err == nil {
		t.Fatal("expected range error")
	}
	if err := dx.AddEdge(0, 9); err == nil {
		t.Fatal("expected range error")
	}
}
