package simrank

import (
	"context"
	"fmt"

	"repro/internal/core"
)

// Shard-serving API: the building blocks of the distributed tier. A
// shard holds the full index (same graph, same seed) but scores only
// the candidates in its assigned vertex range; a router merges the
// per-shard fragments with MergeShardTopK and gets results — and
// pruning statistics — byte-identical to a single-node query. See
// internal/core/shard.go for the replay argument and internal/shard for
// manifests and partitioning.

// ShardCand is one candidate's scoring outcome in a shard fragment:
// vertex, upper bound, scoring state (ShardUnscored / ShardRoughPruned /
// ShardScored / ShardScoredNoRough), and the rough and refined estimates
// where the state says they are valid. Fragments are ordered by UB
// descending, ties by V ascending.
type ShardCand = core.ShardCand

// Shard fragment states (ShardCand.State).
const (
	ShardUnscored      = core.ShardUnscored
	ShardRoughPruned   = core.ShardRoughPruned
	ShardScored        = core.ShardScored
	ShardScoredNoRough = core.ShardScoredNoRough
)

// checkRange validates a shard vertex range [lo, hi) against the graph.
func (ix *Index) checkRange(lo, hi int) error {
	if lo < 0 || hi < lo || hi > ix.g.NumVertices() {
		return fmt.Errorf("simrank: shard range [%d, %d) invalid for %d vertices",
			lo, hi, ix.g.NumVertices())
	}
	return nil
}

// TopKShardCtx runs the shard-restricted scan for a top-k query at u:
// candidates in [lo, hi) are scored at the fixed floor Threshold and
// returned as a fragment for MergeShardTopK. The stats carry this
// shard's cache counters; scan counters are recomputed by the merge.
func (ix *Index) TopKShardCtx(ctx context.Context, u, lo, hi int) ([]ShardCand, QueryStats, error) {
	if err := ix.g.checkVertex(u); err != nil {
		return nil, QueryStats{}, err
	}
	if err := ix.checkRange(lo, hi); err != nil {
		return nil, QueryStats{}, err
	}
	f, st, err := ix.e.TopKShardCtx(ctx, uint32(u), uint32(lo), uint32(hi))
	if err != nil {
		return nil, QueryStats{}, err
	}
	return f, toQueryStats(st), nil
}

// TopKShardAppendCtx is TopKShardCtx writing the fragment into dst
// (reusing its capacity, like append), for servers that recycle
// fragment buffers across requests.
func (ix *Index) TopKShardAppendCtx(ctx context.Context, u, lo, hi int, dst []ShardCand) ([]ShardCand, QueryStats, error) {
	if err := ix.g.checkVertex(u); err != nil {
		return dst, QueryStats{}, err
	}
	if err := ix.checkRange(lo, hi); err != nil {
		return dst, QueryStats{}, err
	}
	f, st, err := ix.e.TopKShardAppendCtx(ctx, uint32(u), uint32(lo), uint32(hi), dst)
	if err != nil {
		return dst, QueryStats{}, err
	}
	return f, toQueryStats(st), nil
}

// TopKShardBatchAppendCtx answers many shard-restricted queries into
// caller-supplied parallel slices: len(frags) and len(sts) must equal
// len(us), and each frags[i]'s capacity is reused.
func (ix *Index) TopKShardBatchAppendCtx(ctx context.Context, us []uint32, lo, hi int, frags [][]ShardCand, sts []QueryStats) error {
	if err := ix.checkRange(lo, hi); err != nil {
		return err
	}
	if len(frags) != len(us) || len(sts) != len(us) {
		return fmt.Errorf("simrank: batch append wants %d fragment and stats slots, got %d and %d",
			len(us), len(frags), len(sts))
	}
	for _, u := range us {
		if err := ix.g.checkVertex(int(u)); err != nil {
			return err
		}
	}
	coreSts := make([]core.QueryStats, len(us))
	if err := ix.e.TopKShardBatchAppendCtx(ctx, us, uint32(lo), uint32(hi), frags, coreSts); err != nil {
		return err
	}
	for i, st := range coreSts {
		sts[i] = toQueryStats(st)
	}
	return nil
}

// TopKShardBatchCtx answers many shard-restricted queries, parallelized
// across queries like TopKBatchCtx.
func (ix *Index) TopKShardBatchCtx(ctx context.Context, us []int, lo, hi int) ([][]ShardCand, []QueryStats, error) {
	if err := ix.checkRange(lo, hi); err != nil {
		return nil, nil, err
	}
	qs := make([]uint32, len(us))
	for i, u := range us {
		if err := ix.g.checkVertex(u); err != nil {
			return nil, nil, err
		}
		qs[i] = uint32(u)
	}
	frags, sts, err := ix.e.TopKShardBatchCtx(ctx, qs, uint32(lo), uint32(hi))
	if err != nil {
		return nil, nil, err
	}
	stats := make([]QueryStats, len(sts))
	for i, st := range sts {
		stats[i] = toQueryStats(st)
	}
	return frags, stats, nil
}

// SimilarShardCtx is the shard-restricted Similar query. Threshold
// queries have a fixed pruning floor, so per-shard result lists merge
// exactly with MergeResults — no replay needed.
func (ix *Index) SimilarShardCtx(ctx context.Context, u int, threshold float64, lo, hi int) ([]Result, QueryStats, error) {
	if err := ix.g.checkVertex(u); err != nil {
		return nil, QueryStats{}, err
	}
	if err := ix.checkRange(lo, hi); err != nil {
		return nil, QueryStats{}, err
	}
	res, st, err := ix.e.ThresholdShardCtx(ctx, uint32(u), threshold, uint32(lo), uint32(hi))
	if err != nil {
		return nil, QueryStats{}, err
	}
	return toResults(res), toQueryStats(st), nil
}

// MergeShardTopK merges per-shard fragments covering disjoint vertex
// ranges and replays the single-node adaptive scan over the merged
// stream. Results and scan statistics (Candidates, PrunedByBound,
// PrunedByRough, Refined) are byte-identical to TopKWithStats on the
// same index; cache counters are zero — sum the per-shard stats for
// those. theta must be the serving Threshold of the index the fragments
// came from (see Manifest.Theta in internal/shard).
func MergeShardTopK(k int, theta float64, frags [][]ShardCand) ([]Result, QueryStats) {
	res, st := core.MergeShardTopK(k, theta, frags)
	return toResults(res), toQueryStats(st)
}

// MergeScratch holds the reusable working memory of a fragment merge;
// see MergeShardTopKScratch. The zero value is ready to use.
type MergeScratch = core.MergeScratch

// MergeShardTopKScratch is MergeShardTopK drawing its merge buffers
// from ms, so a router can merge every query through one scratch
// without re-allocating the candidate stream (nil ms behaves like a
// fresh scratch).
func MergeShardTopKScratch(k int, theta float64, frags [][]ShardCand, ms *MergeScratch) ([]Result, QueryStats) {
	res, st := core.MergeShardTopKScratch(k, theta, frags, ms)
	return toResults(res), toQueryStats(st)
}

// MergeResults merges per-shard best-first result lists (fixed-floor
// query modes: Similar) into the global best-first order. k == 0 keeps
// everything.
func MergeResults(k int, frags [][]Result) []Result {
	cs := make([][]core.Scored, len(frags))
	for i, f := range frags {
		cs[i] = make([]core.Scored, len(f))
		for j, r := range f {
			cs[i][j] = core.Scored{V: uint32(r.Node), Score: r.Score}
		}
	}
	return toResults(core.MergeScored(k, cs))
}

// ServingFingerprint digests everything that determines query results:
// the graph structure and every result-affecting parameter (including
// the seed; excluding Workers and CacheBytes, which move work around
// without changing output). Two indexes with equal fingerprints answer
// every query identically, which is the precondition for merging their
// shard fragments.
func (ix *Index) ServingFingerprint() (graphFP, paramsFP uint64) {
	return ix.g.g.Fingerprint(), ix.e.Params().Fingerprint()
}

// Threshold returns the index's serving pruning threshold θ (the
// normalized Options.Threshold), which routers must pass to
// MergeShardTopK.
func (ix *Index) Threshold() float64 { return ix.e.Params().Theta }

// Seed returns the index's deterministic seed.
func (ix *Index) Seed() uint64 { return ix.e.Params().Seed }
