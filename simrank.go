package simrank

import (
	"context"
	"time"

	"repro/internal/core"
	"repro/internal/exact"
)

// Options tunes the similarity search. Zero fields take the paper's
// defaults (Section 8): c = 0.6, T = 11, R = 100, P = 10, Q = 5,
// θ = 0.01.
type Options struct {
	// DecayFactor is SimRank's c in (0, 1). Default 0.6.
	DecayFactor float64
	// Steps is the walk length / series truncation T. Default 11.
	Steps int
	// Samples is the number of Monte-Carlo walk pairs per refined
	// single-pair estimate. Default 100.
	Samples int
	// RoughSamples is the adaptive first-pass sample count. Default 10.
	RoughSamples int
	// BoundSamples is the walk count for the per-query L1 bound.
	// Default 10000.
	BoundSamples int
	// IndexTrials (P) and IndexWalks (Q) control candidate-index
	// construction. Defaults 10 and 5.
	IndexTrials int
	IndexWalks  int
	// Threshold prunes vertices whose score upper bound falls below it.
	// Default 0.01; pass a tiny positive value (e.g. 1e-12) to
	// effectively disable pruning by score.
	Threshold float64
	// Exhaustive switches candidate enumeration from the random-walk
	// index to the full distance-DMax ball (slower, higher recall).
	Exhaustive bool
	// ExactScores replaces Monte-Carlo candidate scores with a
	// deterministic sparse series evaluation whenever walk supports stay
	// small (they do on web-like graphs), eliminating sampling noise at
	// some query-time cost. Falls back to sampling around hubs.
	ExactScores bool
	// CacheBytes bounds the per-index cross-query tally cache: candidate
	// walk tallies are pure functions of the index state, so queries
	// that revisit a candidate reuse its simulation instead of redoing
	// it. 0 disables the cache. Results are byte-identical with the
	// cache on or off; only throughput changes.
	CacheBytes int64
	// PrologCacheBytes bounds the per-index cache of query-side walk
	// distributions: the sampled prolog of a query is a pure function of
	// (index, query vertex), so repeat queries — and every shard of a
	// distributed deployment answering the same query — skip the
	// dominant per-query sampling cost. 0 means the default (32 MiB);
	// negative disables it. Results are byte-identical either way.
	PrologCacheBytes int64
	// Seed makes all Monte-Carlo components deterministic. Default 1.
	Seed uint64
	// Workers bounds parallelism: the preprocess and all-pairs modes
	// shard vertices across this many goroutines, and a single TopK /
	// Similar query fans its candidate scoring out over them (results are
	// identical for any worker count — every candidate's walks come from
	// its own deterministic RNG stream). Default: GOMAXPROCS.
	Workers int
}

// DefaultOptions returns the paper's experiment configuration.
func DefaultOptions() Options { return Options{} }

// toParams maps Options onto the internal parameter set.
func (o Options) toParams() core.Params {
	p := core.Params{
		C:           o.DecayFactor,
		T:           o.Steps,
		RScore:      o.Samples,
		RRough:      o.RoughSamples,
		RAlpha:      o.BoundSamples,
		P:           o.IndexTrials,
		Q:           o.IndexWalks,
		Theta:       o.Threshold,
		CacheBytes:  o.CacheBytes,
		PrologBytes: o.PrologCacheBytes,
		Seed:        o.Seed,
		Workers:     o.Workers,
	}
	if o.Seed == 0 {
		p.Seed = 1
	}
	if o.Exhaustive {
		p.Strategy = core.CandidatesBall
	}
	p.ExactScoring = o.ExactScores
	return p
}

// Result pairs a vertex with its estimated SimRank score, descending by
// score in all query outputs.
type Result struct {
	Node  int
	Score float64
}

// Index is a preprocessed similarity-search index over one graph. The
// underlying state is an immutable snapshot sealed at build time, so any
// number of goroutines may query one Index concurrently with no locking.
//
// Every query has a context-aware *Ctx variant that observes
// cancellation and deadlines between candidate-scoring blocks; the plain
// methods are wrappers over context.Background().
type Index struct {
	g *Graph
	e *core.Snapshot
}

// IndexStats reports preprocess cost.
type IndexStats struct {
	PreprocessTime time.Duration
	IndexBytes     int64
}

// BuildIndex runs the O(n) preprocess (γ table + candidate index) and
// returns a query-ready index.
func BuildIndex(g *Graph, opts Options) *Index {
	return &Index{g: g, e: core.Build(g.g, opts.toParams()).Seal()}
}

// Stats returns preprocess cost statistics.
func (ix *Index) Stats() IndexStats {
	s := ix.e.Stats()
	return IndexStats{
		PreprocessTime: s.GammaTime + s.IndexTime,
		IndexBytes:     s.IndexBytes,
	}
}

// Graph returns the indexed graph.
func (ix *Index) Graph() *Graph { return ix.g }

// TopK returns the k vertices most similar to u, best first. Fewer than
// k results are returned when fewer candidates clear the threshold.
func (ix *Index) TopK(u, k int) ([]Result, error) {
	return ix.TopKCtx(context.Background(), u, k)
}

// TopKCtx is TopK with cancellation: the query checks ctx between
// candidate-scoring blocks and returns ctx.Err() promptly once it is
// cancelled or past its deadline. Results for an uncancelled context are
// byte-identical to TopK.
func (ix *Index) TopKCtx(ctx context.Context, u, k int) ([]Result, error) {
	if err := ix.g.checkVertex(u); err != nil {
		return nil, err
	}
	res, err := ix.e.TopKCtx(ctx, uint32(u), k)
	if err != nil {
		return nil, err
	}
	return toResults(res), nil
}

// QueryStats reports what the pruning machinery did during one query.
type QueryStats struct {
	// Candidates enumerated before pruning.
	Candidates int
	// PrunedByBound were cut by the L1/L2/distance upper bounds.
	PrunedByBound int
	// PrunedByRough were cut after the rough adaptive estimate.
	PrunedByRough int
	// Refined received the full-sample estimate.
	Refined int
	// CacheHits / CacheMisses count candidate tallies served from /
	// inserted into the cross-query cache (zero when disabled).
	CacheHits   int
	CacheMisses int
	// CacheEvictions counts cache entries this query's inserts displaced.
	CacheEvictions int
}

// CacheStats reports the cross-query tally cache's lifetime counters and
// current footprint. All fields are zero when Options.CacheBytes is 0.
type CacheStats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Entries   int
	// BytesInUse approximates the cached entries' heap footprint; it
	// stays within BudgetBytes at quiescence.
	BytesInUse  int64
	BudgetBytes int64
}

func toCacheStats(st core.CacheStats) CacheStats {
	return CacheStats{
		Hits:        st.Hits,
		Misses:      st.Misses,
		Evictions:   st.Evictions,
		Entries:     st.Entries,
		BytesInUse:  st.BytesInUse,
		BudgetBytes: st.BudgetBytes,
	}
}

// CacheStats reports the index's tally-cache counters.
func (ix *Index) CacheStats() CacheStats { return toCacheStats(ix.e.CacheStats()) }

// PrologStats reports the query-prolog-cache counters (same shape as
// CacheStats); all zero when Options.PrologCacheBytes is negative.
func (ix *Index) PrologStats() CacheStats { return toCacheStats(ix.e.PrologStats()) }

// TopKWithStats is TopK plus pruning statistics, for tuning and
// observability.
func (ix *Index) TopKWithStats(u, k int) ([]Result, QueryStats, error) {
	return ix.TopKWithStatsCtx(context.Background(), u, k)
}

// TopKWithStatsCtx is TopKWithStats with cancellation (see TopKCtx).
func (ix *Index) TopKWithStatsCtx(ctx context.Context, u, k int) ([]Result, QueryStats, error) {
	if err := ix.g.checkVertex(u); err != nil {
		return nil, QueryStats{}, err
	}
	res, st, err := ix.e.TopKStatsCtx(ctx, uint32(u), k)
	if err != nil {
		return nil, QueryStats{}, err
	}
	return toResults(res), toQueryStats(st), nil
}

func toQueryStats(st core.QueryStats) QueryStats {
	return QueryStats{
		Candidates:     st.Candidates,
		PrunedByBound:  st.PrunedByBound,
		PrunedByRough:  st.PrunedByRough,
		Refined:        st.Refined,
		CacheHits:      st.CacheHits,
		CacheMisses:    st.CacheMisses,
		CacheEvictions: st.CacheEvictions,
	}
}

// TopKBatch answers many top-k queries at once, fanning them over
// Options.Workers whole-query workers that share the index's tally
// cache. Results (and per-query statistics) are identical to issuing
// each query individually; batching only changes throughput.
func (ix *Index) TopKBatch(us []int, k int) ([][]Result, error) {
	res, _, err := ix.TopKBatchWithStatsCtx(context.Background(), us, k)
	return res, err
}

// TopKBatchCtx is TopKBatch with cancellation, observed between queries
// and between candidate-scoring blocks within each query.
func (ix *Index) TopKBatchCtx(ctx context.Context, us []int, k int) ([][]Result, error) {
	res, _, err := ix.TopKBatchWithStatsCtx(ctx, us, k)
	return res, err
}

// TopKBatchWithStatsCtx is TopKBatchCtx plus per-query pruning and cache
// statistics.
func (ix *Index) TopKBatchWithStatsCtx(ctx context.Context, us []int, k int) ([][]Result, []QueryStats, error) {
	qs := make([]uint32, len(us))
	for i, u := range us {
		if err := ix.g.checkVertex(u); err != nil {
			return nil, nil, err
		}
		qs[i] = uint32(u)
	}
	res, sts, err := ix.e.TopKBatchCtx(ctx, qs, k)
	if err != nil {
		return nil, nil, err
	}
	out := make([][]Result, len(res))
	for i, r := range res {
		out[i] = toResults(r)
	}
	stats := make([]QueryStats, len(sts))
	for i, st := range sts {
		stats[i] = toQueryStats(st)
	}
	return out, stats, nil
}

// Similar returns every vertex whose estimated SimRank score with u is at
// least threshold, best first.
func (ix *Index) Similar(u int, threshold float64) ([]Result, error) {
	return ix.SimilarCtx(context.Background(), u, threshold)
}

// SimilarCtx is Similar with cancellation (see TopKCtx).
func (ix *Index) SimilarCtx(ctx context.Context, u int, threshold float64) ([]Result, error) {
	if err := ix.g.checkVertex(u); err != nil {
		return nil, err
	}
	res, err := ix.e.ThresholdCtx(ctx, uint32(u), threshold)
	if err != nil {
		return nil, err
	}
	return toResults(res), nil
}

// SinglePair estimates the (truncated) SimRank score between u and v by
// Monte-Carlo simulation, in O(T·R) time independent of graph size.
func (ix *Index) SinglePair(u, v int) (float64, error) {
	return ix.SinglePairCtx(context.Background(), u, v)
}

// SinglePairCtx is SinglePair with cancellation, checked once on entry
// (a single-pair estimate is one bounded unit of work).
func (ix *Index) SinglePairCtx(ctx context.Context, u, v int) (float64, error) {
	if err := ix.g.checkVertex(u); err != nil {
		return 0, err
	}
	if err := ix.g.checkVertex(v); err != nil {
		return 0, err
	}
	if u == v {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		return 1, nil
	}
	return ix.e.SinglePairCtx(ctx, uint32(u), uint32(v))
}

// AllTopK runs the top-k search for every vertex in parallel and returns
// one row per vertex. Space is O(m + k·n).
func (ix *Index) AllTopK(k int) [][]Result {
	rows := ix.e.AllTopK(k)
	out := make([][]Result, len(rows))
	for i, r := range rows {
		out[i] = toResults(r)
	}
	return out
}

// JoinPair is one result of SimilarityJoin, with U < V.
type JoinPair struct {
	U, V  int
	Score float64
}

// SimilarityJoin finds every unordered vertex pair whose estimated
// SimRank score is at least threshold, strongest first. maxPairs caps the
// output (0 = unlimited). This runs a threshold query per vertex in
// parallel: expect all-pairs cost on large graphs.
func (ix *Index) SimilarityJoin(threshold float64, maxPairs int) []JoinPair {
	out, _ := ix.SimilarityJoinCtx(context.Background(), threshold, maxPairs)
	return out
}

// SimilarityJoinCtx is SimilarityJoin with cancellation: the per-vertex
// threshold queries stop once ctx is cancelled and the call returns
// ctx.Err() with no partial output.
func (ix *Index) SimilarityJoinCtx(ctx context.Context, threshold float64, maxPairs int) ([]JoinPair, error) {
	pairs, err := ix.e.SimilarityJoinCtx(ctx, threshold, maxPairs)
	if err != nil {
		return nil, err
	}
	out := make([]JoinPair, len(pairs))
	for i, p := range pairs {
		out[i] = JoinPair{U: int(p.U), V: int(p.V), Score: p.Score}
	}
	return out, nil
}

func toResults(xs []core.Scored) []Result {
	out := make([]Result, len(xs))
	for i, s := range xs {
		out[i] = Result{Node: int(s.V), Score: s.Score}
	}
	return out
}

// ExactSingleSource computes the deterministic truncated-series SimRank
// scores from u to every vertex with D = (1−c)·I, in O(T·(n+m)) time.
// Useful as ground truth and for small-to-medium graphs.
func ExactSingleSource(g *Graph, opts Options, u int) ([]float64, error) {
	if err := g.checkVertex(u); err != nil {
		return nil, err
	}
	p := opts.toParams()
	d := exact.UniformDiagonal(g.g.N(), paramC(p.C))
	return exact.SingleSource(g.g, d, paramC(p.C), paramT(p.T), uint32(u)), nil
}

// ExactTopK ranks vertices by the deterministic truncated series.
func ExactTopK(g *Graph, opts Options, u, k int) ([]Result, error) {
	row, err := ExactSingleSource(g, opts, u)
	if err != nil {
		return nil, err
	}
	top := exact.TopK(row, uint32(u), k)
	out := make([]Result, len(top))
	for i, s := range top {
		out[i] = Result{Node: int(s.V), Score: s.Score}
	}
	return out, nil
}

// ExactAllPairs computes converged SimRank for every pair with the
// partial-sums iteration. O(n²) memory: small graphs only.
func ExactAllPairs(g *Graph, c float64, iterations int) [][]float64 {
	if c <= 0 || c >= 1 {
		c = 0.6
	}
	if iterations <= 0 {
		iterations = exact.IterationsFor(c, 1e-4)
	}
	m := exact.PartialSumsAllPairs(g.g, c, iterations)
	out := make([][]float64, m.N)
	for i := 0; i < m.N; i++ {
		row := make([]float64, m.N)
		copy(row, m.Row(i))
		out[i] = row
	}
	return out
}

func paramC(c float64) float64 {
	if c <= 0 || c >= 1 {
		return 0.6
	}
	return c
}

func paramT(t int) int {
	if t <= 0 {
		return 11
	}
	return t
}
