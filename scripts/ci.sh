#!/bin/sh
# ci.sh — the full pre-merge gate, exactly as CI runs it. Exits nonzero
# on the first failure, including any simlint diagnostic.
#
# Sequence: gofmt cleanliness, go vet, build, full shuffled test suite,
# race pass over every package, simlint over ./... plus a stale-
# suppression audit, and a one-iteration benchmark smoke pass.
set -eu

cd "$(dirname "$0")/.."

echo "==> gofmt"
unformatted="$(gofmt -l .)"
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:"
	echo "$unformatted"
	exit 1
fi

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test -shuffle=on ./..."
go test -shuffle=on ./...

echo "==> go test -race ./..."
go test -race ./...

# The wire codec and the router's pooled transport are the two places
# where a data race would silently corrupt answers (shared decode
# buffers, connection reuse); run them under the race detector
# explicitly and unshuffled so a failure here names the culprit.
echo "==> go test -race ./internal/router/... ./internal/wire/..."
go test -race -count=1 ./internal/router/... ./internal/wire/...

# Analyzer wall-clock budget (benchguard-shaped, but for the linter
# itself): the interprocedural layer must stay cheap enough to run on
# every merge. 10s is ~3x the measured ~3s runtime of the full module
# pass now that the suite includes the wiretaint and poolescape
# interprocedural analyzers; blowing it means a fixed-point loop or the
# call-graph build regressed, which is a bug in its own right.
echo "==> simlint ./..."
go run ./cmd/simlint -baseline lint.baseline.json -time-budget 10s ./...

# Suppression hygiene: rerun with -audit, which disables //lint:ignore
# processing and reports any directive whose raw finding no longer
# fires. A stale suppression is rot — it documents a violation that was
# fixed and silently excuses the next real one on that line.
echo "==> simlint -audit ./..."
go run ./cmd/simlint -audit -time-budget 10s ./...

# One iteration of every benchmark: catches bit-rot in bench-only code
# paths without paying for real measurements.
echo "==> bench smoke (1 iteration each)"
go test -run - -bench . -benchtime 1x ./...

# Multi-shard smoke: two simserver shards behind simrouter on loopback
# must answer a query corpus byte-identically — results, ordering, and
# scan statistics — to a stand-alone simserver over the same graph and
# seed. Run twice: once over the binary wire protocol (shards advertise
# TCP bin listeners, the router's default) and once with the router
# forced to JSON, so both encodings of the scatter-gather are proven
# identical end-to-end across real processes.
echo "==> multi-shard smoke (2 shards + router vs single node)"
smoketmp="$(mktemp -d)"
smoke_cleanup() {
	kill $(cat "$smoketmp"/*.pid 2>/dev/null) 2>/dev/null || true
	rm -rf "$smoketmp"
}
trap smoke_cleanup EXIT
go build -o "$smoketmp/gengraph" ./cmd/gengraph
go build -o "$smoketmp/simserver" ./cmd/simserver
go build -o "$smoketmp/simrouter" ./cmd/simrouter
go build -o "$smoketmp/topkdiff" ./cmd/topkdiff
"$smoketmp/gengraph" -kind copying -n 2000 -k 5 -p 0.3 -seed 21 -o "$smoketmp/graph.txt"
"$smoketmp/simserver" -graph "$smoketmp/graph.txt" -addr 127.0.0.1:19481 >"$smoketmp/single.log" 2>&1 &
echo $! > "$smoketmp/single.pid"
"$smoketmp/simserver" -graph "$smoketmp/graph.txt" -shard 0/2 -addr 127.0.0.1:19482 \
	-bin-addr 127.0.0.1:19485 >"$smoketmp/shard0.log" 2>&1 &
echo $! > "$smoketmp/shard0.pid"
"$smoketmp/simserver" -graph "$smoketmp/graph.txt" -shard 1/2 -addr 127.0.0.1:19483 \
	-bin-addr 127.0.0.1:19486 >"$smoketmp/shard1.log" 2>&1 &
echo $! > "$smoketmp/shard1.pid"
"$smoketmp/simrouter" -shards http://127.0.0.1:19482,http://127.0.0.1:19483 \
	-addr 127.0.0.1:19484 >"$smoketmp/router.log" 2>&1 &
echo $! > "$smoketmp/router.pid"
"$smoketmp/simrouter" -shards http://127.0.0.1:19482,http://127.0.0.1:19483 \
	-wire json -addr 127.0.0.1:19487 >"$smoketmp/router-json.log" 2>&1 &
echo $! > "$smoketmp/router-json.pid"
if ! "$smoketmp/topkdiff" -a http://127.0.0.1:19484 -b http://127.0.0.1:19481 -count 50 -k 20 -wait 60s; then
	echo "multi-shard smoke (binary wire) failed; router log:"
	cat "$smoketmp/router.log"
	exit 1
fi
if ! "$smoketmp/topkdiff" -a http://127.0.0.1:19487 -b http://127.0.0.1:19481 -count 50 -k 20 -wait 60s; then
	echo "multi-shard smoke (forced JSON) failed; router log:"
	cat "$smoketmp/router-json.log"
	exit 1
fi
smoke_cleanup
trap - EXIT

# Walk-kernel perf guard: a short measured run of BenchmarkWalkStep must
# stay within 2x of the committed BENCH_core.json snapshot, so losing
# the alias-kernel optimizations (or reintroducing an allocation that
# shows up as time) fails the gate. Skipped on small machines — below 4
# CPUs, scheduler noise regularly exceeds the 2x signal.
echo "==> walk-kernel perf guard"
cpus="$(nproc 2>/dev/null || echo 1)"
if [ "$cpus" -lt 4 ]; then
	echo "skipped: $cpus CPU(s) < 4, too noisy to gate on"
else
	go test -run - -bench 'WalkStep$' -benchtime 100x ./internal/core | \
		go run ./cmd/benchguard -baseline BENCH_core.json -name BenchmarkWalkStep -max-ratio 2
fi

# Serving-path perf guard: a routed /topk over the loopback topology must
# stay within 2x of the committed snapshot, so regressing the binary wire
# fast path (or reintroducing per-query allocation in the scatter-gather)
# fails the gate. Same small-machine skip as above.
echo "==> router perf guard"
if [ "$cpus" -lt 4 ]; then
	echo "skipped: $cpus CPU(s) < 4, too noisy to gate on"
else
	go test -run - -bench 'RouterTopK$' -benchtime 50x ./internal/router | \
		go run ./cmd/benchguard -baseline BENCH_core.json -name BenchmarkRouterTopK -max-ratio 2
fi

echo "==> gate clean"
