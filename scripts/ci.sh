#!/bin/sh
# ci.sh — the full pre-merge gate, exactly as CI runs it. Exits nonzero
# on the first failure, including any simlint diagnostic.
#
# Sequence: gofmt cleanliness, go vet, build, full shuffled test suite,
# race pass over every package, simlint over ./..., and a one-iteration
# benchmark smoke pass.
set -eu

cd "$(dirname "$0")/.."

echo "==> gofmt"
unformatted="$(gofmt -l .)"
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:"
	echo "$unformatted"
	exit 1
fi

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test -shuffle=on ./..."
go test -shuffle=on ./...

echo "==> go test -race ./..."
go test -race ./...

# Analyzer wall-clock budget (benchguard-shaped, but for the linter
# itself): the interprocedural layer must stay cheap enough to run on
# every merge. 6s is ~2x the committed ~2.5s runtime of the full
# module pass; blowing it means a fixed-point loop or the call-graph
# build regressed, which is a bug in its own right.
echo "==> simlint ./..."
go run ./cmd/simlint -baseline lint.baseline.json -time-budget 6s ./...

# One iteration of every benchmark: catches bit-rot in bench-only code
# paths without paying for real measurements.
echo "==> bench smoke (1 iteration each)"
go test -run - -bench . -benchtime 1x ./...

# Walk-kernel perf guard: a short measured run of BenchmarkWalkStep must
# stay within 2x of the committed BENCH_core.json snapshot, so losing
# the alias-kernel optimizations (or reintroducing an allocation that
# shows up as time) fails the gate. Skipped on small machines — below 4
# CPUs, scheduler noise regularly exceeds the 2x signal.
echo "==> walk-kernel perf guard"
cpus="$(nproc 2>/dev/null || echo 1)"
if [ "$cpus" -lt 4 ]; then
	echo "skipped: $cpus CPU(s) < 4, too noisy to gate on"
else
	go test -run - -bench 'WalkStep$' -benchtime 100x ./internal/core | \
		go run ./cmd/benchguard -baseline BENCH_core.json -name BenchmarkWalkStep -max-ratio 2
fi

echo "==> gate clean"
