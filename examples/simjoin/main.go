// Command simjoin demonstrates the SimRank similarity join: find every
// pair of vertices with similarity above a threshold — the workload of
// entity-resolution and duplicate-detection pipelines (two papers citing
// the same literature, two pages with the same in-link profile).
//
// Run with:
//
//	go run ./examples/simjoin -authors 2000 -theta 0.08
package main

import (
	"flag"
	"fmt"
	"time"

	simrank "repro"
)

func main() {
	authors := flag.Int("authors", 2000, "approximate collaboration-network size (communities)")
	theta := flag.Float64("theta", 0.08, "similarity threshold for the join")
	maxPairs := flag.Int("max", 25, "report at most this many pairs")
	seed := flag.Uint64("seed", 5, "generator and search seed")
	flag.Parse()

	g := simrank.GenerateCollaborationGraph(*authors/4, 5, 0.8, *seed)
	fmt.Printf("collaboration network: %d authors, %d coauthorship edges\n",
		g.NumVertices(), g.NumEdges()/2)

	opts := simrank.DefaultOptions()
	opts.Seed = *seed
	start := time.Now()
	idx := simrank.BuildIndex(g, opts)
	fmt.Printf("index built in %v\n", time.Since(start).Round(time.Millisecond))

	start = time.Now()
	pairs := idx.SimilarityJoin(*theta, *maxPairs)
	fmt.Printf("\nsimilarity join at theta=%.2f found %d pairs in %v:\n",
		*theta, len(pairs), time.Since(start).Round(time.Millisecond))
	for i, p := range pairs {
		fmt.Printf("  #%-3d authors %5d ~ %-5d  score %.4f\n", i+1, p.U, p.V, p.Score)
	}
	if len(pairs) == 0 {
		fmt.Println("  (no pairs above the threshold; try a lower -theta)")
	}
}
