// Command quickstart demonstrates the minimal simrank workflow: build a
// small graph, index it, and ask for the most similar vertices.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	simrank "repro"
)

func main() {
	// A tiny "web": pages 0-2 are hubs that link to both page 3 and
	// page 4, so 3 and 4 should come out highly similar. Page 5 is
	// linked only from page 0.
	gb := simrank.NewGraphBuilder(6)
	for _, e := range [][2]int{
		{0, 3}, {1, 3}, {2, 3},
		{0, 4}, {1, 4}, {2, 4},
		{0, 5},
		{3, 0}, {4, 1}, // a couple of back links
	} {
		if err := gb.AddEdge(e[0], e[1]); err != nil {
			log.Fatal(err)
		}
	}
	g := gb.Build()
	fmt.Printf("graph: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())

	// Build the index (the O(n) preprocess) and query.
	idx := simrank.BuildIndex(g, simrank.DefaultOptions())
	fmt.Printf("preprocess: %v, index %d bytes\n",
		idx.Stats().PreprocessTime.Round(0), idx.Stats().IndexBytes)

	top, err := idx.TopK(3, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nmost similar to vertex 3:")
	for rank, r := range top {
		fmt.Printf("  #%d vertex %d  score %.4f\n", rank+1, r.Node, r.Score)
	}

	s, err := idx.SinglePair(3, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsingle-pair estimate s(3,4) = %.4f\n", s)

	// Cross-check against the deterministic series.
	exactTop, err := simrank.ExactTopK(g, simrank.DefaultOptions(), 3, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nexact (deterministic series) ranking for vertex 3:")
	for rank, r := range exactTop {
		fmt.Printf("  #%d vertex %d  score %.4f\n", rank+1, r.Node, r.Score)
	}
}
