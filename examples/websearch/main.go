// Command websearch runs "related pages" search over a synthetic web
// graph built with the copying model, the structural class where the
// paper's method shines (Section 5: web graphs have the tightest SimRank
// locality). It also cross-checks the Monte-Carlo top-k against the
// deterministic series ranking.
//
// Run with:
//
//	go run ./examples/websearch -pages 20000
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	simrank "repro"
)

func main() {
	pages := flag.Int("pages", 20000, "number of pages")
	links := flag.Int("links", 8, "links per page")
	beta := flag.Float64("beta", 0.3, "copying-model divergence in (0,1)")
	queries := flag.Int("queries", 5, "number of query pages")
	k := flag.Int("k", 10, "results per query")
	seed := flag.Uint64("seed", 7, "generator and search seed")
	flag.Parse()

	g := simrank.GenerateWebGraph(*pages, *links, *beta, *seed)
	fmt.Printf("web graph: %d pages, %d links\n", g.NumVertices(), g.NumEdges())

	opts := simrank.DefaultOptions()
	opts.Seed = *seed
	start := time.Now()
	idx := simrank.BuildIndex(g, opts)
	fmt.Printf("preprocess: %v, index %d KB\n\n",
		time.Since(start).Round(time.Millisecond), idx.Stats().IndexBytes/1024)

	var totalQuery time.Duration
	agree, total := 0, 0
	for i := 0; i < *queries; i++ {
		q := (i*7919 + 13) % *pages
		start = time.Now()
		got, err := idx.TopK(q, *k)
		if err != nil {
			log.Fatal(err)
		}
		totalQuery += time.Since(start)

		fmt.Printf("pages related to page %d:\n", q)
		for rank, r := range got {
			fmt.Printf("  #%-2d page %-7d score %.4f\n", rank+1, r.Node, r.Score)
		}

		// Deterministic cross-check.
		want, err := simrank.ExactTopK(g, opts, q, *k)
		if err != nil {
			log.Fatal(err)
		}
		wantSet := map[int]bool{}
		for _, w := range want {
			if w.Score >= 0.05 {
				wantSet[w.Node] = true
			}
		}
		hit := 0
		for _, r := range got {
			if wantSet[r.Node] {
				hit++
			}
		}
		agree += hit
		total += len(wantSet)
		fmt.Printf("  (recovered %d/%d of the exact high-score pages)\n\n", hit, len(wantSet))
	}
	fmt.Printf("average query time: %v\n", (totalQuery / time.Duration(*queries)).Round(time.Microsecond))
	if total > 0 {
		fmt.Printf("overall agreement with exact ranking: %d/%d\n", agree, total)
	}
}
