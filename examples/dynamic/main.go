// Command dynamic demonstrates similarity search over an evolving graph:
// a stream of edge insertions (a growing web crawl) interleaved with
// queries. The DynamicIndex re-preprocesses only the vertices whose
// random-walk behaviour an update could have changed; queries serve a
// published snapshot, so each batch is applied with an explicit Refresh
// before re-querying (read-your-writes on demand).
//
// Run with:
//
//	go run ./examples/dynamic
package main

import (
	"fmt"
	"log"

	simrank "repro"
)

func main() {
	const n = 2000
	// Start from a seed crawl.
	seed := simrank.GenerateWebGraph(n, 6, 0.3, 21)
	opts := simrank.DefaultOptions()
	opts.Seed = 21
	dx := simrank.NewDynamicIndexFrom(seed, opts)
	defer dx.Close()

	// Pick two quiet pages (at most one in-link) so the incoming
	// co-citations dominate their similarity.
	qa, qb := -1, -1
	for v := 0; v < n && qb < 0; v++ {
		if seed.InDegree(v) <= 1 {
			if qa < 0 {
				qa = v
			} else {
				qb = v
			}
		}
	}
	if qb < 0 {
		log.Fatal("no quiet pages in the generated crawl")
	}

	show := func(when string) {
		top, err := dx.TopK(qa, 5)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: top pages related to %d:\n", when, qa)
		for i, r := range top {
			fmt.Printf("  #%d page %-6d score %.4f\n", i+1, r.Node, r.Score)
		}
		if len(top) == 0 {
			fmt.Println("  (none above threshold)")
		}
		fmt.Println()
	}
	show("before updates")

	// The crawler discovers that pages 100..104 all link to both quiet
	// pages — they become co-cited, so s(qa, qb) should jump.
	before, err := dx.SinglePair(qa, qb)
	if err != nil {
		log.Fatal(err)
	}
	for src := 100; src <= 104; src++ {
		if err := dx.AddEdge(src, qa); err != nil {
			log.Fatal(err)
		}
		if err := dx.AddEdge(src, qb); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("applied 10 new edges (%d vertices pending re-preprocess)\n\n", dx.PendingUpdates())

	// Queries would keep serving the pre-update snapshot until the
	// background refresh lands; Refresh applies the batch synchronously.
	if err := dx.Refresh(); err != nil {
		log.Fatal(err)
	}
	after, err := dx.SinglePair(qa, qb)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("s(%d, %d): %.4f -> %.4f after co-citation\n\n", qa, qb, before, after)
	show("after updates")

	// Retract the discovery (pages went offline).
	for src := 100; src <= 104; src++ {
		dx.RemoveEdge(src, qa)
		dx.RemoveEdge(src, qb)
	}
	if err := dx.Refresh(); err != nil {
		log.Fatal(err)
	}
	restored, err := dx.SinglePair(qa, qb)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after retraction: s(%d, %d) = %.4f (back to the original %.4f)\n",
		qa, qb, restored, before)
}
