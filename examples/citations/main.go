// Command citations runs related-paper search over a synthetic citation
// network, the workload that motivated SimRank in the original Jeh &
// Widom paper: two papers are similar when they are cited by similar
// papers.
//
// Run with:
//
//	go run ./examples/citations -papers 5000 -query 4200
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	simrank "repro"
)

func main() {
	papers := flag.Int("papers", 5000, "number of papers in the synthetic corpus")
	refs := flag.Int("refs", 6, "references per paper")
	query := flag.Int("query", -1, "paper to query (default: a recent, well-cited one)")
	k := flag.Int("k", 10, "number of related papers to return")
	seed := flag.Uint64("seed", 42, "generator and search seed")
	flag.Parse()

	g := simrank.GenerateCitationGraph(*papers, *refs, *seed)
	fmt.Printf("citation corpus: %d papers, %d citation edges\n",
		g.NumVertices(), g.NumEdges())

	opts := simrank.DefaultOptions()
	opts.Seed = *seed
	start := time.Now()
	idx := simrank.BuildIndex(g, opts)
	fmt.Printf("index built in %v (%d bytes)\n", time.Since(start).Round(time.Millisecond), idx.Stats().IndexBytes)

	q := *query
	if q < 0 {
		// Pick a mid-age paper with several citations so the
		// neighbourhood is interesting.
		best, bestDeg := 0, -1
		for v := *papers / 2; v < *papers; v++ {
			if d := g.InDegree(v); d > bestDeg {
				best, bestDeg = v, d
			}
		}
		q = best
	}
	fmt.Printf("\nquery: paper #%d (cited %d times, cites %d papers)\n",
		q, g.InDegree(q), g.OutDegree(q))

	start = time.Now()
	related, err := idx.TopK(q, *k)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	fmt.Printf("related papers (query took %v):\n", elapsed.Round(time.Microsecond))
	for rank, r := range related {
		fmt.Printf("  #%-2d paper %-6d score %.4f  (cited %d times)\n",
			rank+1, r.Node, r.Score, g.InDegree(r.Node))
	}
	if len(related) == 0 {
		fmt.Println("  (no papers above the similarity threshold)")
	}
}
