// Command recsys demonstrates item-to-item recommendation with SimRank
// over a bipartite user-item graph: two items are similar when they are
// rated by similar users (and two users are similar when they rate
// similar items) — the recursive intuition SimRank formalizes.
//
// Run with:
//
//	go run ./examples/recsys -users 3000 -items 500
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	simrank "repro"
)

func main() {
	users := flag.Int("users", 3000, "number of users")
	items := flag.Int("items", 500, "number of items")
	ratings := flag.Int("ratings", 8, "mean ratings per user")
	k := flag.Int("k", 8, "recommendations per item")
	seed := flag.Uint64("seed", 11, "generator and search seed")
	flag.Parse()

	g := simrank.GenerateBipartiteGraph(*users, *items, *ratings, *seed)
	fmt.Printf("user-item graph: %d users, %d items, %d rating edges\n",
		*users, *items, g.NumEdges()/2)

	opts := simrank.DefaultOptions()
	opts.Seed = *seed
	// Item-item SimRank flows through two hops (item -> co-rater ->
	// item), so scores are naturally small; lower the cutoff.
	opts.Threshold = 0.001
	start := time.Now()
	idx := simrank.BuildIndex(g, opts)
	fmt.Printf("index built in %v\n\n", time.Since(start).Round(time.Millisecond))

	// Item IDs live in [users, users+items). Recommend for the three
	// most-rated items.
	type pop struct{ item, deg int }
	best := []pop{}
	for it := *users; it < *users+*items; it++ {
		best = append(best, pop{it, g.InDegree(it)})
	}
	for i := 0; i < 3; i++ {
		// Selection of the i-th most popular item.
		for j := i + 1; j < len(best); j++ {
			if best[j].deg > best[i].deg {
				best[i], best[j] = best[j], best[i]
			}
		}
		it := best[i].item
		start = time.Now()
		recs, err := idx.TopK(it, *k)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("customers who liked item %d (%d ratings) also liked (query %v):\n",
			it-*users, best[i].deg, time.Since(start).Round(time.Microsecond))
		shown := 0
		for _, r := range recs {
			if r.Node < *users {
				continue // skip user vertices; we want item-item
			}
			shown++
			fmt.Printf("  item %-5d score %.4f  (%d ratings)\n",
				r.Node-*users, r.Score, g.InDegree(r.Node))
		}
		if shown == 0 {
			fmt.Println("  (no items above the similarity threshold)")
		}
		fmt.Println()
	}
}
