package simrank_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"

	simrank "repro"
	"repro/internal/server"
)

// TestEndToEnd exercises the whole stack the way a deployment would:
// load a graph from disk, build and persist an index, reload it, query it
// directly and over HTTP, and cross-check everything against the
// deterministic reference.
func TestEndToEnd(t *testing.T) {
	g, err := simrank.LoadEdgeListFile("testdata/small.txt")
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 87 || g.NumEdges() != 410 {
		t.Fatalf("committed graph changed: n=%d m=%d", g.NumVertices(), g.NumEdges())
	}

	opts := simrank.DefaultOptions()
	opts.Seed = 42
	idx := simrank.BuildIndex(g, opts)

	// Persist and reload; answers must be identical.
	var saved bytes.Buffer
	if err := idx.SaveIndex(&saved); err != nil {
		t.Fatal(err)
	}
	idx2, err := simrank.LoadIndex(g, opts, &saved)
	if err != nil {
		t.Fatal(err)
	}

	// Query every vertex on both instances; compare against the exact
	// reference ranking.
	agree, total := 0, 0
	for u := 0; u < g.NumVertices(); u++ {
		a, err := idx.TopK(u, 5)
		if err != nil {
			t.Fatal(err)
		}
		b, err := idx2.TopK(u, 5)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("u=%d: reloaded index answers differently", u)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("u=%d: reloaded index answers differently at %d", u, i)
			}
		}
		want, err := simrank.ExactTopK(g, opts, u, 5)
		if err != nil {
			t.Fatal(err)
		}
		wantSet := map[int]bool{}
		for _, w := range want {
			if w.Score >= 0.05 {
				wantSet[w.Node] = true
				total++
			}
		}
		for _, r := range a {
			if wantSet[r.Node] {
				agree++
			}
		}
	}
	if total > 0 && float64(agree) < 0.85*float64(total) {
		t.Fatalf("end-to-end recall %d/%d too low", agree, total)
	}

	// Serve the reloaded index over HTTP and compare one query.
	srv := httptest.NewServer(server.New(idx2))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/topk?u=3&k=5")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP status %d", resp.StatusCode)
	}
	var payload server.TopKResponse
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		t.Fatal(err)
	}
	direct, err := idx2.TopK(3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(payload.Results) != len(direct) {
		t.Fatalf("HTTP answered %d results, direct %d", len(payload.Results), len(direct))
	}
	for i := range direct {
		if payload.Results[i].Node != direct[i].Node {
			t.Fatalf("HTTP result %d differs: %+v vs %+v", i, payload.Results[i], direct[i])
		}
	}
}

// TestGoldenGraphParsesConsistently pins the committed corpus format.
func TestGoldenGraphParsesConsistently(t *testing.T) {
	g, err := simrank.LoadEdgeListFile("testdata/small.txt")
	if err != nil {
		t.Fatal(err)
	}
	// Round-trip through the builder API.
	gb := simrank.NewGraphBuilder(g.NumVertices())
	for u := 0; u < g.NumVertices(); u++ {
		for v := 0; v < g.NumVertices(); v++ {
			if g.HasEdge(u, v) {
				if err := gb.AddEdge(u, v); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	if rebuilt := gb.Build(); rebuilt.NumEdges() != g.NumEdges() {
		t.Fatalf("rebuild lost edges: %d vs %d", rebuilt.NumEdges(), g.NumEdges())
	}
	// The golden scores file must be present and plausibly sized.
	data, err := os.ReadFile("testdata/small_golden.tsv")
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) < 100 {
		t.Fatalf("golden corpus suspiciously small: %d lines", len(lines))
	}
}
