// Command benchjson converts `go test -bench` output into the committed
// BENCH_*.json format:
//
//	go test -bench 'TopK|OneSided|WalkStep' -run - ./internal/core | \
//	    benchjson -meta note="query hot path" -o BENCH_core.json
//
// Repeat -meta to attach several key=value context entries (cpu, branch,
// baseline numbers).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/bench"
)

type metaFlags map[string]string

func (m metaFlags) String() string { return fmt.Sprint(map[string]string(m)) }

func (m metaFlags) Set(s string) error {
	k, v, ok := strings.Cut(s, "=")
	if !ok || k == "" {
		return fmt.Errorf("expected key=value, got %q", s)
	}
	m[k] = v
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	meta := metaFlags{}
	flag.Var(meta, "meta", "key=value metadata entry (repeatable)")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	results, err := bench.ParseGoBench(os.Stdin)
	if err != nil {
		log.Fatal(err)
	}
	if len(results) == 0 {
		log.Fatal("no benchmark lines found on stdin")
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}()
		w = f
	}
	report := bench.BenchReport{Results: results}
	if len(meta) > 0 {
		report.Meta = meta
	}
	if err := bench.WriteBenchJSON(w, report); err != nil {
		log.Fatal(err)
	}
}
