// Command simsearch builds a top-k SimRank similarity-search index over a
// graph and answers queries.
//
// Examples:
//
//	simsearch -graph web.txt -query 42 -k 20
//	simsearch -graph web.txt -queries 100 -k 20          # random batch, timing
//	simsearch -graph web.txt -save-index web.idx         # persist preprocess
//	simsearch -graph web.txt -load-index web.idx -i      # reuse + REPL
//	gengraph -kind copying -n 50000 | simsearch -k 10 -query 7
//
// In interactive mode (-i), each input line is a query: "7" prints the
// top-k for vertex 7, "7 21" prints the single-pair estimate s(7, 21).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	simrank "repro"
	"repro/internal/rng"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("simsearch: ")

	graphPath := flag.String("graph", "", "edge-list file (default: read stdin)")
	query := flag.Int("query", -1, "query vertex")
	batch := flag.Int("queries", 0, "run this many random queries and report timing")
	k := flag.Int("k", 20, "number of results")
	c := flag.Float64("c", 0.6, "decay factor")
	theta := flag.Float64("theta", 0.01, "score threshold")
	seed := flag.Uint64("seed", 1, "Monte-Carlo seed")
	workers := flag.Int("workers", 0, "parallelism for preprocess and per-query scoring (0 = GOMAXPROCS)")
	exhaustive := flag.Bool("exhaustive", false, "use exhaustive ball candidates (slower, higher recall)")
	exactCheck := flag.Bool("exact", false, "also print the deterministic-series ranking for comparison")
	saveIndex := flag.String("save-index", "", "write the preprocess results to this file after building")
	loadIndex := flag.String("load-index", "", "reuse preprocess results from this file instead of rebuilding")
	useMmap := flag.Bool("mmap", false, "memory-map -load-index instead of streaming it; the graph is read from the index file (-graph ignored)")
	interactive := flag.Bool("i", false, "interactive mode: read queries from stdin")
	flag.Parse()

	if *useMmap && *loadIndex == "" {
		log.Fatal("-mmap requires -load-index")
	}
	var g *simrank.Graph
	var err error
	if *useMmap {
		// The mapped index embeds the graph CSR; nothing else to read.
	} else if *graphPath != "" {
		g, err = simrank.LoadEdgeListFile(*graphPath)
	} else {
		g, err = simrank.LoadEdgeList(os.Stdin)
	}
	if err != nil {
		log.Fatal(err)
	}
	if g != nil {
		fmt.Printf("graph: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())
	}

	opts := simrank.DefaultOptions()
	opts.DecayFactor = *c
	opts.Threshold = *theta
	opts.Seed = *seed
	opts.Workers = *workers
	opts.Exhaustive = *exhaustive

	var idx *simrank.Index
	if *useMmap {
		start := time.Now()
		var closer func() error
		idx, closer, err = simrank.LoadIndexMmap(*loadIndex, opts)
		if err != nil {
			log.Fatal(err)
		}
		defer closer()
		g = idx.Graph()
		fmt.Printf("mapped index %s in %v: %d vertices, %d edges (%d KB)\n",
			*loadIndex, time.Since(start).Round(time.Millisecond),
			g.NumVertices(), g.NumEdges(), idx.Stats().IndexBytes/1024)
	} else if *loadIndex != "" {
		f, err := os.Open(*loadIndex)
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		idx, err = simrank.LoadIndex(g, opts, f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("loaded index %s in %v (%d KB)\n",
			*loadIndex, time.Since(start).Round(time.Millisecond), idx.Stats().IndexBytes/1024)
	} else {
		start := time.Now()
		idx = simrank.BuildIndex(g, opts)
		fmt.Printf("preprocess: %v (index %d KB)\n",
			time.Since(start).Round(time.Millisecond), idx.Stats().IndexBytes/1024)
	}
	if *saveIndex != "" {
		f, err := os.Create(*saveIndex)
		if err != nil {
			log.Fatal(err)
		}
		if err := idx.SaveIndex(f); err != nil {
			f.Close()
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("saved index to %s\n", *saveIndex)
	}

	runOne := func(u int) {
		start := time.Now()
		res, err := idx.TopK(u, *k)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\ntop-%d for vertex %d (%v):\n", *k, u, time.Since(start).Round(time.Microsecond))
		for i, r := range res {
			fmt.Printf("  #%-3d %-8d %.5f\n", i+1, r.Node, r.Score)
		}
		if len(res) == 0 {
			fmt.Println("  (nothing above the threshold)")
		}
		if *exactCheck {
			ex, err := simrank.ExactTopK(g, opts, u, *k)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println("exact (deterministic series):")
			for i, r := range ex {
				fmt.Printf("  #%-3d %-8d %.5f\n", i+1, r.Node, r.Score)
			}
		}
	}

	switch {
	case *interactive:
		repl(idx, *k, os.Stdin, os.Stdout)
	case *batch > 0:
		r := rng.New(*seed + 99)
		var total time.Duration
		for i := 0; i < *batch; i++ {
			u := r.Intn(g.NumVertices())
			start := time.Now()
			if _, err := idx.TopK(u, *k); err != nil {
				log.Fatal(err)
			}
			total += time.Since(start)
		}
		fmt.Printf("ran %d queries, avg %v/query\n", *batch, (total / time.Duration(*batch)).Round(time.Microsecond))
	case *query >= 0:
		runOne(*query)
	default:
		log.Fatal("pass -query, -queries, or -i")
	}
}

// repl reads queries from in: "u" for top-k, "u v" for a single pair.
func repl(idx *simrank.Index, k int, in io.Reader, out io.Writer) {
	sc := bufio.NewScanner(in)
	fmt.Fprintln(out, "interactive mode; enter \"u\" for top-k or \"u v\" for a pair (ctrl-D to quit)")
	for {
		fmt.Fprint(out, "> ")
		if !sc.Scan() {
			fmt.Fprintln(out)
			return
		}
		fields := strings.Fields(sc.Text())
		switch len(fields) {
		case 0:
			continue
		case 1:
			u, err := strconv.Atoi(fields[0])
			if err != nil {
				fmt.Fprintf(out, "bad vertex %q\n", fields[0])
				continue
			}
			start := time.Now()
			res, err := idx.TopK(u, k)
			if err != nil {
				fmt.Fprintln(out, err)
				continue
			}
			for i, r := range res {
				fmt.Fprintf(out, "  #%-3d %-8d %.5f\n", i+1, r.Node, r.Score)
			}
			fmt.Fprintf(out, "  (%v)\n", time.Since(start).Round(time.Microsecond))
		case 2:
			u, err1 := strconv.Atoi(fields[0])
			v, err2 := strconv.Atoi(fields[1])
			if err1 != nil || err2 != nil {
				fmt.Fprintf(out, "bad pair %q\n", sc.Text())
				continue
			}
			s, err := idx.SinglePair(u, v)
			if err != nil {
				fmt.Fprintln(out, err)
				continue
			}
			fmt.Fprintf(out, "  s(%d,%d) = %.5f\n", u, v, s)
		default:
			fmt.Fprintln(out, "enter one or two vertex IDs")
		}
	}
}
