package main

import (
	"bytes"
	"strings"
	"testing"

	simrank "repro"
)

func replIndex(t *testing.T) *simrank.Index {
	t.Helper()
	gb := simrank.NewGraphBuilder(6)
	for _, src := range []int{1, 2, 3} {
		if err := gb.AddEdge(src, 4); err != nil {
			t.Fatal(err)
		}
		if err := gb.AddEdge(src, 5); err != nil {
			t.Fatal(err)
		}
	}
	return simrank.BuildIndex(gb.Build(), simrank.DefaultOptions())
}

func TestReplTopKAndPair(t *testing.T) {
	idx := replIndex(t)
	in := strings.NewReader("4\n4 5\n")
	var out bytes.Buffer
	repl(idx, 3, in, &out)
	s := out.String()
	if !strings.Contains(s, "s(4,5) =") {
		t.Fatalf("missing pair output: %q", s)
	}
	if !strings.Contains(s, "#1") {
		t.Fatalf("missing top-k output: %q", s)
	}
}

func TestReplBadInput(t *testing.T) {
	idx := replIndex(t)
	in := strings.NewReader("abc\n1 x\n1 2 3\n99\n\n")
	var out bytes.Buffer
	repl(idx, 3, in, &out)
	s := out.String()
	if !strings.Contains(s, "bad vertex") {
		t.Fatalf("missing bad-vertex message: %q", s)
	}
	if !strings.Contains(s, "bad pair") {
		t.Fatalf("missing bad-pair message: %q", s)
	}
	if !strings.Contains(s, "one or two vertex IDs") {
		t.Fatalf("missing arity message: %q", s)
	}
	if !strings.Contains(s, "out of range") {
		t.Fatalf("missing range error: %q", s)
	}
}
