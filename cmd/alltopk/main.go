// Command alltopk computes top-k similar vertices for every vertex of a
// graph (the "top-k for all" mode) and writes them as TSV. Jobs are
// restartable (-resume) and shardable across machines (-shard i/M); shard
// outputs concatenate into the full result.
//
// Examples:
//
//	alltopk -graph web.txt -k 20 -o topk.tsv
//	alltopk -graph web.txt -k 20 -o topk.tsv -resume      # continue a crashed run
//	alltopk -graph web.txt -k 20 -shard 2/8 -o shard2.tsv # machine 2 of 8
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	simrank "repro"
	"repro/internal/batch"
	"repro/internal/core"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("alltopk: ")

	graphPath := flag.String("graph", "", "edge-list file (required)")
	out := flag.String("o", "", "output TSV file (required)")
	k := flag.Int("k", 20, "results per vertex")
	c := flag.Float64("c", 0.6, "decay factor")
	theta := flag.Float64("theta", 0.01, "score threshold")
	seed := flag.Uint64("seed", 1, "Monte-Carlo seed")
	shardSpec := flag.String("shard", "", "process only shard i of M, as \"i/M\"")
	resume := flag.Bool("resume", false, "skip vertices already present in the output file and append")
	workers := flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
	flag.Parse()

	if *graphPath == "" || *out == "" {
		log.Fatal("-graph and -o are required")
	}
	shard, numShards := 0, 0
	if *shardSpec != "" {
		if _, err := fmt.Sscanf(strings.TrimSpace(*shardSpec), "%d/%d", &shard, &numShards); err != nil {
			log.Fatalf("bad -shard %q (want \"i/M\"): %v", *shardSpec, err)
		}
	}

	g, err := simrank.LoadEdgeListFile(*graphPath)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("graph: %d vertices, %d edges", g.NumVertices(), g.NumEdges())

	p := core.DefaultParams()
	p.C = *c
	p.Theta = *theta
	p.Seed = *seed
	p.Workers = *workers
	start := time.Now()
	eng := core.Build(g.Internal(), p)
	log.Printf("preprocess: %v", time.Since(start).Round(time.Millisecond))

	done := map[uint32]bool{}
	if *resume {
		if f, err := os.Open(*out); err == nil {
			done, err = batch.ScanCompleted(f)
			f.Close()
			if err != nil {
				log.Fatal(err)
			}
			log.Printf("resuming: %d vertices already done", len(done))
		}
	}

	flags := os.O_CREATE | os.O_WRONLY
	if *resume {
		flags |= os.O_APPEND
	} else {
		flags |= os.O_TRUNC
	}
	f, err := os.OpenFile(*out, flags, 0o644)
	if err != nil {
		log.Fatal(err)
	}
	job := batch.Job{
		Engine: eng, K: *k,
		Shard: shard, NumShards: numShards,
		Done: done,
		Progress: func(done, total int) {
			log.Printf("progress: %d/%d vertices", done, total)
		},
	}
	start = time.Now()
	processed, err := batch.Run(job, f)
	if err != nil {
		f.Close()
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %d vertices to %s in %v", processed, *out, time.Since(start).Round(time.Millisecond))
}
