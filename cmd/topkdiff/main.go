// Command topkdiff compares the answers of two similarity servers over
// a query corpus and exits nonzero on the first divergence. It is the
// CI smoke check that a shard topology behind simrouter answers
// byte-identically — results, ordering, and scan statistics — to a
// stand-alone simserver over the same graph and seed.
//
//	topkdiff -a http://localhost:8080 -b http://localhost:8090 -count 50 -k 20
//
// Both /topk (one request per corpus query, stats compared) and
// /topk/batch (the whole corpus in one request) are exercised.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strings"
	"time"
)

type result struct {
	Node  int     `json:"node"`
	Score float64 `json:"score"`
}

type stats struct {
	Candidates    int `json:"candidates"`
	PrunedByBound int `json:"pruned_by_bound"`
	PrunedByRough int `json:"pruned_by_rough"`
	Refined       int `json:"refined"`
}

type topKResponse struct {
	Query   int      `json:"query"`
	Results []result `json:"results"`
	Stats   *stats   `json:"stats"`
}

type batchResponse struct {
	Results []topKResponse `json:"results"`
}

func get(url string) ([]byte, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: status %d: %s", url, resp.StatusCode, strings.TrimSpace(string(body)))
	}
	return body, nil
}

func post(url, body string) ([]byte, error) {
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: status %d: %s", url, resp.StatusCode, strings.TrimSpace(string(b)))
	}
	return b, nil
}

// waitReady polls /readyz on every server until all answer 200 or the
// deadline passes.
func waitReady(addrs []string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for _, addr := range addrs {
		for {
			resp, err := http.Get(addr + "/readyz")
			if err == nil {
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					break
				}
			}
			if time.Now().After(deadline) {
				if err != nil {
					return fmt.Errorf("%s not ready after %v: %v", addr, timeout, err)
				}
				return fmt.Errorf("%s not ready after %v (status %d)", addr, timeout, resp.StatusCode)
			}
			time.Sleep(100 * time.Millisecond)
		}
	}
	return nil
}

func diffOne(label string, ra, rb topKResponse) error {
	if len(ra.Results) != len(rb.Results) {
		return fmt.Errorf("%s: %d vs %d results", label, len(ra.Results), len(rb.Results))
	}
	for i := range ra.Results {
		if ra.Results[i] != rb.Results[i] {
			return fmt.Errorf("%s: result %d: %+v vs %+v", label, i, ra.Results[i], rb.Results[i])
		}
	}
	if ra.Stats != nil && rb.Stats != nil && *ra.Stats != *rb.Stats {
		return fmt.Errorf("%s: scan stats %+v vs %+v", label, *ra.Stats, *rb.Stats)
	}
	// Marshal the result lists and require byte equality too, so no
	// float formatting subtlety hides behind struct comparison.
	ja, _ := json.Marshal(ra.Results)
	jb, _ := json.Marshal(rb.Results)
	if !bytes.Equal(ja, jb) {
		return fmt.Errorf("%s: result JSON differs:\n  a: %s\n  b: %s", label, ja, jb)
	}
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("topkdiff: ")

	a := flag.String("a", "", "first server base URL (required)")
	b := flag.String("b", "", "second server base URL (required)")
	count := flag.Int("count", 50, "corpus size: queries 0..count-1")
	k := flag.Int("k", 20, "k per query")
	wait := flag.Duration("wait", 30*time.Second, "how long to wait for both servers' /readyz")
	flag.Parse()

	if *a == "" || *b == "" {
		log.Fatal("-a and -b are required")
	}
	ua, ub := strings.TrimRight(*a, "/"), strings.TrimRight(*b, "/")
	if err := waitReady([]string{ua, ub}, *wait); err != nil {
		log.Fatal(err)
	}

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "topkdiff: DIVERGENCE:", err)
		os.Exit(1)
	}

	// Per-query /topk with stats.
	for u := 0; u < *count; u++ {
		path := fmt.Sprintf("/topk?u=%d&k=%d&stats=1", u, *k)
		ba, err := get(ua + path)
		if err != nil {
			log.Fatal(err)
		}
		bb, err := get(ub + path)
		if err != nil {
			log.Fatal(err)
		}
		var ra, rb topKResponse
		if err := json.Unmarshal(ba, &ra); err != nil {
			log.Fatal(err)
		}
		if err := json.Unmarshal(bb, &rb); err != nil {
			log.Fatal(err)
		}
		if err := diffOne(fmt.Sprintf("u=%d", u), ra, rb); err != nil {
			fail(err)
		}
	}

	// The whole corpus as one batch.
	queries := make([]int, *count)
	for i := range queries {
		queries[i] = i
	}
	payload, _ := json.Marshal(map[string]any{"queries": queries, "k": *k, "stats": true})
	ba, err := post(ua+"/topk/batch", string(payload))
	if err != nil {
		log.Fatal(err)
	}
	bb, err := post(ub+"/topk/batch", string(payload))
	if err != nil {
		log.Fatal(err)
	}
	var bra, brb batchResponse
	if err := json.Unmarshal(ba, &bra); err != nil {
		log.Fatal(err)
	}
	if err := json.Unmarshal(bb, &brb); err != nil {
		log.Fatal(err)
	}
	if len(bra.Results) != len(brb.Results) {
		fail(fmt.Errorf("batch: %d vs %d results", len(bra.Results), len(brb.Results)))
	}
	for i := range bra.Results {
		if err := diffOne(fmt.Sprintf("batch u=%d", bra.Results[i].Query), bra.Results[i], brb.Results[i]); err != nil {
			fail(err)
		}
	}

	fmt.Printf("topkdiff: %d queries + 1 batch identical between %s and %s\n", *count, ua, ub)
}
