// Command experiments regenerates every table and figure of the paper's
// evaluation (Section 8) on synthetic dataset stand-ins.
//
// Examples:
//
//	experiments -exp all
//	experiments -exp table4 -scale 1 -budget 1073741824
//	experiments -exp fig2 -queries 100
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"repro/internal/bench"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")

	exp := flag.String("exp", "all", "experiment(s): all | table1 | table2 | table3 | table4 | fig1 | fig2 | ablation | sensitivity (comma-separated)")
	scale := flag.Float64("scale", 1.0, "dataset scale factor (1.0 = laptop scale)")
	queries := flag.Int("queries", 20, "query vertices per dataset")
	seed := flag.Uint64("seed", 1, "experiment seed")
	budget := flag.Int64("budget", 1<<30, "comparator memory budget in bytes (stand-in for testbed RAM)")
	workers := flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
	csvDir := flag.String("csv", "", "also write raw results as CSV files into this directory")
	flag.Parse()

	cfg := bench.Config{
		Scale:        *scale,
		Queries:      *queries,
		Seed:         *seed,
		MemoryBudget: *budget,
		Workers:      *workers,
	}

	saveCSV := func(name string, write func(f *os.File) error) {
		if *csvDir == "" {
			return
		}
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			log.Fatal(err)
		}
		path := *csvDir + "/" + name
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		if err := write(f); err != nil {
			f.Close()
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", path)
	}

	run := map[string]func(){
		"table1": func() { bench.Table1(os.Stdout, cfg) },
		"table2": func() { bench.Table2(os.Stdout, cfg) },
		"table3": func() {
			rows := bench.Table3(os.Stdout, cfg)
			saveCSV("table3.csv", func(f *os.File) error { return bench.WriteTable3CSV(f, rows) })
		},
		"table4": func() {
			rows := bench.Table4(os.Stdout, cfg)
			saveCSV("table4.csv", func(f *os.File) error { return bench.WriteTable4CSV(f, rows) })
		},
		"fig1": func() {
			res := bench.Figure1(os.Stdout, cfg)
			saveCSV("fig1.csv", func(f *os.File) error { return bench.WriteFig1CSV(f, res) })
		},
		"fig2": func() {
			res := bench.Figure2(os.Stdout, cfg)
			saveCSV("fig2.csv", func(f *os.File) error { return bench.WriteFig2CSV(f, res) })
		},
		"ablation":    func() { bench.Ablation(os.Stdout, cfg) },
		"sensitivity": func() { bench.Sensitivity(os.Stdout, cfg) },
	}
	order := []string{"table1", "table2", "fig1", "fig2", "table3", "table4", "ablation", "sensitivity"}

	var selected []string
	if *exp == "all" {
		selected = order
	} else {
		for _, name := range strings.Split(*exp, ",") {
			name = strings.TrimSpace(name)
			if _, ok := run[name]; !ok {
				log.Fatalf("unknown experiment %q (choose from %s)", name, strings.Join(order, ", "))
			}
			selected = append(selected, name)
		}
	}

	fmt.Printf("Scalable Similarity Search for SimRank — experiment reproduction\n")
	fmt.Printf("scale=%.2f queries=%d seed=%d budget=%d\n", *scale, *queries, *seed, *budget)
	for _, name := range selected {
		start := time.Now()
		run[name]()
		fmt.Printf("\n[%s completed in %v]\n", name, time.Since(start).Round(time.Millisecond))
	}
}
