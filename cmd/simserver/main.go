// Command simserver serves top-k SimRank similarity search over HTTP.
//
// Example:
//
//	gengraph -kind copying -n 100000 -k 8 -o web.txt
//	simserver -graph web.txt -addr :8080
//	curl 'localhost:8080/topk?u=42&k=20'
//	curl 'localhost:8080/pair?u=42&v=99'
//	curl 'localhost:8080/similar?u=42&theta=0.05'
//	curl 'localhost:8080/stats'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	simrank "repro"
	"repro/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("simserver: ")

	graphPath := flag.String("graph", "", "edge-list file (required)")
	indexPath := flag.String("load-index", "", "optional pre-built index file (see simsearch -save-index)")
	addr := flag.String("addr", ":8080", "listen address")
	c := flag.Float64("c", 0.6, "decay factor")
	theta := flag.Float64("theta", 0.01, "score threshold")
	seed := flag.Uint64("seed", 1, "Monte-Carlo seed")
	flag.Parse()

	if *graphPath == "" {
		log.Fatal("-graph is required")
	}
	g, err := simrank.LoadEdgeListFile(*graphPath)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("graph: %d vertices, %d edges", g.NumVertices(), g.NumEdges())

	opts := simrank.DefaultOptions()
	opts.DecayFactor = *c
	opts.Threshold = *theta
	opts.Seed = *seed

	var idx *simrank.Index
	start := time.Now()
	if *indexPath != "" {
		f, err := os.Open(*indexPath)
		if err != nil {
			log.Fatal(err)
		}
		idx, err = simrank.LoadIndex(g, opts, f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("loaded index in %v", time.Since(start).Round(time.Millisecond))
	} else {
		idx = simrank.BuildIndex(g, opts)
		log.Printf("preprocess in %v (%d KB)", time.Since(start).Round(time.Millisecond),
			idx.Stats().IndexBytes/1024)
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           server.New(idx),
		ReadHeaderTimeout: 5 * time.Second,
	}
	go func() {
		log.Printf("listening on %s", *addr)
		if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	fmt.Println()
	log.Print("shutting down")
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}
}
