// Command simserver serves top-k SimRank similarity search over HTTP.
//
// The index builds in the background: the server starts listening
// immediately, /healthz reports the process is up, and /readyz flips from
// 503 to 200 once the preprocess finishes and queries are served. Each
// query runs under the request context bounded by -query-timeout, and
// SIGINT/SIGTERM drain in-flight requests for up to -shutdown-grace.
//
// Example:
//
//	gengraph -kind copying -n 100000 -k 8 -o web.txt
//	simserver -graph web.txt -addr :8080
//	curl 'localhost:8080/readyz'
//	curl 'localhost:8080/topk?u=42&k=20'
//	curl 'localhost:8080/pair?u=42&v=99'
//	curl 'localhost:8080/similar?u=42&theta=0.05'
//	curl 'localhost:8080/stats'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	simrank "repro"
	"repro/internal/server"
)

// parseShardSpec parses the -shard flag: "" means stand-alone (0 of 1),
// otherwise "i/n" with 0 <= i < n.
func parseShardSpec(s string) (shardIdx, numShards int, err error) {
	if s == "" {
		return 0, 1, nil
	}
	var i, n int
	if _, err := fmt.Sscanf(s, "%d/%d", &i, &n); err != nil {
		return 0, 0, fmt.Errorf("-shard must look like \"i/n\", got %q", s)
	}
	if n < 1 || i < 0 || i >= n {
		return 0, 0, fmt.Errorf("-shard %q out of range: need 0 <= i < n", s)
	}
	return i, n, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("simserver: ")

	graphPath := flag.String("graph", "", "edge-list file (required unless -mmap)")
	indexPath := flag.String("load-index", "", "optional pre-built index file (see simsearch -save-index)")
	useMmap := flag.Bool("mmap", false, "memory-map -load-index instead of streaming it: zero-copy load, graph read from the index file itself")
	addr := flag.String("addr", ":8080", "listen address")
	c := flag.Float64("c", 0.6, "decay factor")
	theta := flag.Float64("theta", 0.01, "score threshold")
	seed := flag.Uint64("seed", 1, "Monte-Carlo seed")
	cacheBytes := flag.Int64("cache-bytes", 0, "cross-query tally cache budget in bytes (0 = disabled); results are identical either way")
	queryTimeout := flag.Duration("query-timeout", 10*time.Second, "per-query computation deadline (0 = unlimited)")
	shutdownGrace := flag.Duration("shutdown-grace", 5*time.Second, "how long to drain in-flight requests on SIGINT/SIGTERM")
	shardSpec := flag.String("shard", "", "serve as shard i of n, written \"i/n\" (e.g. -shard 0/3); enables owned-range /shard/* queries for a simrouter tier")
	binAddr := flag.String("bin-addr", "", "also serve the binary shard wire protocol on this TCP address (e.g. :8180); advertised via /shardinfo for the simrouter fast path")
	flag.Parse()

	if *useMmap && *indexPath == "" {
		log.Fatal("-mmap requires -load-index")
	}
	shardIdx, numShards, err := parseShardSpec(*shardSpec)
	if err != nil {
		log.Fatal(err)
	}
	var g *simrank.Graph
	if *graphPath != "" {
		var err error
		g, err = simrank.LoadEdgeListFile(*graphPath)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("graph: %d vertices, %d edges", g.NumVertices(), g.NumEdges())
	} else if !*useMmap {
		// With -mmap the graph comes out of the index file itself.
		log.Fatal("-graph is required")
	}

	opts := simrank.DefaultOptions()
	opts.DecayFactor = *c
	opts.Threshold = *theta
	opts.Seed = *seed
	opts.CacheBytes = *cacheBytes

	// The query handler is swapped in atomically once the index is ready;
	// until then the bootstrap handler answers /healthz (process is up)
	// and 503s everything else, so orchestrators can distinguish "alive"
	// from "ready" during a long preprocess.
	var ready atomic.Pointer[server.Handler]
	root := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if h := ready.Load(); h != nil {
			h.ServeHTTP(w, r)
			return
		}
		if r.URL.Path == "/healthz" {
			w.WriteHeader(http.StatusOK)
			fmt.Fprintln(w, "ok")
			return
		}
		w.Header().Set("Retry-After", "1")
		server.WriteError(w, http.StatusServiceUnavailable, server.CodeNotReady, "index not ready")
	})

	buildDone := make(chan error, 1)
	var munmap atomic.Pointer[func() error]
	go func() {
		var idx *simrank.Index
		start := time.Now()
		if *useMmap {
			var closer func() error
			var err error
			idx, closer, err = simrank.LoadIndexMmap(*indexPath, opts)
			if err != nil {
				buildDone <- err
				return
			}
			munmap.Store(&closer)
			if g != nil && (idx.Graph().NumVertices() != g.NumVertices() || idx.Graph().NumEdges() != g.NumEdges()) {
				buildDone <- fmt.Errorf("-graph (%d vertices, %d edges) does not match the mapped index (%d vertices, %d edges)",
					g.NumVertices(), g.NumEdges(), idx.Graph().NumVertices(), idx.Graph().NumEdges())
				return
			}
			log.Printf("mapped index in %v: %d vertices, %d edges",
				time.Since(start).Round(time.Millisecond), idx.Graph().NumVertices(), idx.Graph().NumEdges())
		} else if *indexPath != "" {
			f, err := os.Open(*indexPath)
			if err != nil {
				buildDone <- err
				return
			}
			idx, err = simrank.LoadIndex(g, opts, f)
			f.Close()
			if err != nil {
				buildDone <- err
				return
			}
			log.Printf("loaded index in %v", time.Since(start).Round(time.Millisecond))
		} else {
			idx = simrank.BuildIndex(g, opts)
			log.Printf("preprocess in %v (%d KB)", time.Since(start).Round(time.Millisecond),
				idx.Stats().IndexBytes/1024)
		}
		h := server.NewShard(idx, shardIdx, numShards)
		h.QueryTimeout = *queryTimeout
		if *binAddr != "" {
			// The listener lives until the process exits; HTTP Shutdown
			// drains queries, and binary conns die with the process.
			bound, _, err := h.StartBin(*binAddr)
			if err != nil {
				buildDone <- fmt.Errorf("bin listener: %w", err)
				return
			}
			log.Printf("binary wire protocol on %s", bound)
		}
		ready.Store(h)
		if numShards > 1 {
			m := h.Manifest()
			log.Printf("ready (shard %d/%d, vertices [%d, %d))", m.Shard, m.NumShards, m.Lo, m.Hi)
		} else {
			log.Print("ready")
		}
		buildDone <- nil
	}()

	// WriteTimeout backstops the per-query deadline: a handler that
	// somehow exceeds its query budget still cannot hold the connection
	// forever.
	writeTimeout := 0 * time.Second
	if *queryTimeout > 0 {
		writeTimeout = *queryTimeout + 5*time.Second
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           root,
		ReadHeaderTimeout: 5 * time.Second,
		WriteTimeout:      writeTimeout,
		IdleTimeout:       2 * time.Minute,
	}
	go func() {
		log.Printf("listening on %s", *addr)
		if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-buildDone:
		if err != nil {
			log.Fatal(err)
		}
		<-stop
	case <-stop:
	}
	fmt.Println()
	log.Print("shutting down")
	ctx, cancel := context.WithTimeout(context.Background(), *shutdownGrace)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}
	// All in-flight queries have drained; the mapping can go.
	if c := munmap.Load(); c != nil {
		if err := (*c)(); err != nil {
			log.Fatal(err)
		}
	}
}
