package main

import (
	"strings"
	"testing"

	"repro/internal/analysis"
)

// TestListRegistersAllAnalyzers pins the -list contract: every analyzer
// in the registry prints exactly one line with its name and a nonempty
// one-line doc, and nothing else. A rule that lands without registering
// (or without documentation) is invisible to `simlint -rules` users and
// to the DESIGN.md §7 inventory; this test makes that a build failure.
func TestListRegistersAllAnalyzers(t *testing.T) {
	want := analysis.Analyzers()
	const expected = 13
	if len(want) != expected {
		t.Fatalf("registry has %d analyzers, want %d; update this test alongside the registry", len(want), expected)
	}

	var stdout, stderr strings.Builder
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("run(-list) = %d, want 0; stderr: %s", code, stderr.String())
	}
	if stderr.Len() != 0 {
		t.Errorf("-list wrote to stderr: %q", stderr.String())
	}

	lines := strings.Split(strings.TrimRight(stdout.String(), "\n"), "\n")
	if len(lines) != len(want) {
		t.Fatalf("-list printed %d lines, want %d:\n%s", len(lines), len(want), stdout.String())
	}
	for i, a := range want {
		name, doc, found := strings.Cut(lines[i], " ")
		if !found || name != a.Name {
			t.Errorf("line %d = %q, want it to start with %q", i, lines[i], a.Name)
			continue
		}
		if a.Doc == "" || strings.TrimSpace(doc) == "" {
			t.Errorf("analyzer %s has no one-line doc", a.Name)
		}
		if strings.ContainsRune(a.Doc, '\n') {
			t.Errorf("analyzer %s doc spans multiple lines; -list output must stay one line per rule", a.Name)
		}
	}
}

// TestRunFlagErrors pins the usage exits: a bad flag and the
// -audit/-baseline conflict both return 2 without running any analysis.
func TestRunFlagErrors(t *testing.T) {
	var stdout, stderr strings.Builder
	if code := run([]string{"-definitely-not-a-flag"}, &stdout, &stderr); code != 2 {
		t.Errorf("unknown flag: run = %d, want 2", code)
	}
	if code := run([]string{"-audit", "-baseline", "x.json"}, &stdout, &stderr); code != 2 {
		t.Errorf("-audit with -baseline: run = %d, want 2", code)
	}
}
