// Command simlint runs the repository's determinism and concurrency
// lint suite (internal/analysis) over the module.
//
// Usage:
//
//	simlint [-json] [-rules norand,seedmix,...] [-list] [packages]
//
// Packages are directories or "dir/..." patterns; the default is "./...".
// The tool is its own driver (the stdlib has no vet -vettool plumbing),
// type-checks from source with go/parser + go/types, and needs no
// dependencies beyond the standard library.
//
// Exit status: 0 when clean, 1 when any diagnostic is reported, 2 on
// usage or load errors. Suppress individual findings in source with
// //lint:ignore <rule> <reason> on or directly above the flagged line.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run())
}

func run() int {
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array")
	rules := flag.String("rules", "", "comma-separated subset of rules to run (default: all)")
	list := flag.Bool("list", false, "list available rules and exit")
	verbose := flag.Bool("v", false, "report loader warnings (stubbed imports, soft type errors)")
	flag.Parse()

	analyzers := analysis.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *rules != "" {
		var bad string
		analyzers, bad = analysis.ByName(*rules)
		if bad != "" {
			fmt.Fprintf(os.Stderr, "simlint: unknown rule %q (try -list)\n", bad)
			return 2
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	var diags []analysis.Diagnostic
	for _, pat := range patterns {
		ds, err := lintPattern(pat, analyzers, *verbose)
		if err != nil {
			fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
			return 2
		}
		diags = append(diags, ds...)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []analysis.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

func lintPattern(pat string, analyzers []*analysis.Analyzer, verbose bool) ([]analysis.Diagnostic, error) {
	root := strings.TrimSuffix(pat, "...")
	recursive := root != pat
	root = filepath.Clean(strings.TrimSuffix(root, "/"))
	if root == "" {
		root = "."
	}

	loader, err := analysis.NewLoader(root)
	if err != nil {
		return nil, err
	}
	var pkgs []*analysis.Package
	if recursive {
		pkgs, err = loader.LoadAll(root)
	} else {
		var pkg *analysis.Package
		pkg, err = loader.LoadDir(root)
		pkgs = []*analysis.Package{pkg}
	}
	if err != nil {
		return nil, err
	}

	var diags []analysis.Diagnostic
	for _, pkg := range pkgs {
		if verbose {
			for _, te := range pkg.TypeErrors {
				fmt.Fprintf(os.Stderr, "simlint: warning: %s: %v\n", pkg.ImportPath, te)
			}
		}
		ds, err := analysis.Run(pkg, analyzers)
		if err != nil {
			return nil, err
		}
		diags = append(diags, ds...)
	}
	if verbose {
		for _, stub := range loader.Stubs() {
			fmt.Fprintf(os.Stderr, "simlint: warning: import %q stubbed (not resolvable)\n", stub)
		}
	}
	return diags, nil
}
