// Command simlint runs the repository's determinism and concurrency
// lint suite (internal/analysis) over the module.
//
// Usage:
//
//	simlint [-json] [-rules norand,seedmix,...] [-list] [-v] [-par N]
//	        [-baseline file [-write-baseline]] [-update-baseline]
//	        [-nosuppress] [-audit] [-time-budget d] [packages]
//
// Packages are directories or "dir/..." patterns; the default is "./...".
// The tool is its own driver (the stdlib has no vet -vettool plumbing),
// type-checks from source with go/parser + go/types, and needs no
// dependencies beyond the standard library. Loading is sequential (the
// loader shares a FileSet and package cache); then a module-wide
// interprocedural layer (call graph + effect summaries) is built once and
// shared, and the analyzers run over packages in parallel, bounded by
// -par; output order is deterministic regardless of scheduling.
//
// With -baseline FILE, diagnostics recorded in FILE are accepted and only
// new findings are reported — the CI mode, so a newly added analyzer's
// pre-existing debt fails no one while new regressions fail immediately.
// -write-baseline (re)writes FILE from the current findings instead.
// -update-baseline is the make-target spelling: it implies -write-baseline
// and defaults FILE to lint.baseline.json. Entries that no longer fire
// are listed as stale under -v so the debt file shrinks over time.
//
// -nosuppress disables //lint:ignore and //lint:file-ignore processing,
// surfacing every raw diagnostic — the manual audit mode for eyeballing
// the suppression inventory (a directive whose diagnostic no longer
// appears even with -nosuppress suppresses nothing and should be deleted).
//
// -audit automates that check: analyzers run with suppression disabled
// and the reported diagnostics are the stale directives themselves (plus
// malformed ones), so CI can fail on suppression rot directly. Audit mode
// is incompatible with -baseline: directive hygiene has no debt file.
//
// -time-budget D fails the run (exit 1) if loading plus analysis exceeds
// the duration D; CI uses it to keep the lint pass from silently growing.
//
// Exit status:
//
//	0  clean: no diagnostics, or (with -baseline) none beyond the baseline
//	1  diagnostics found (new diagnostics, in baseline mode), or budget blown
//	2  usage, load, or type-checking error
//
// Suppress individual findings in source with //lint:ignore <rule>
// <reason> on or directly above the flagged line.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its environment injected (arguments and both output
// streams), so tests can drive the driver in-process.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("simlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array")
	rules := fs.String("rules", "", "comma-separated subset of rules to run (default: all)")
	list := fs.Bool("list", false, "list available rules and exit")
	verbose := fs.Bool("v", false, "report loader warnings, per-analyzer wall time, and stale baseline entries")
	par := fs.Int("par", runtime.NumCPU(), "max packages analyzed concurrently")
	baselinePath := fs.String("baseline", "", "baseline JSON file: report only diagnostics not recorded in it (exit 1 = new findings)")
	writeBaseline := fs.Bool("write-baseline", false, "write current diagnostics to the -baseline file and exit 0")
	updateBaseline := fs.Bool("update-baseline", false, "rewrite the baseline deterministically (implies -write-baseline; -baseline defaults to lint.baseline.json)")
	noSuppress := fs.Bool("nosuppress", false, "ignore //lint:ignore and //lint:file-ignore directives (audit mode for stale suppressions)")
	audit := fs.Bool("audit", false, "report stale suppression directives instead of findings (exit 1 = suppression rot)")
	timeBudget := fs.Duration("time-budget", 0, "fail if loading+analysis exceeds this duration (0 = no budget)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	start := time.Now()
	if *updateBaseline {
		if *baselinePath == "" {
			*baselinePath = "lint.baseline.json"
		}
		*writeBaseline = true
	}

	analyzers := analysis.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *rules != "" {
		var bad string
		analyzers, bad = analysis.ByName(*rules)
		if bad != "" {
			fmt.Fprintf(stderr, "simlint: unknown rule %q (try -list)\n", bad)
			return 2
		}
	}
	if *writeBaseline && *baselinePath == "" {
		fmt.Fprintln(stderr, "simlint: -write-baseline requires -baseline FILE")
		return 2
	}
	if *audit && (*baselinePath != "" || *writeBaseline) {
		fmt.Fprintln(stderr, "simlint: -audit is incompatible with -baseline/-write-baseline")
		return 2
	}
	if *par < 1 {
		*par = 1
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	timing := newTimingSink(*verbose, stderr)
	var diags []analysis.Diagnostic
	modRoot := ""
	for _, pat := range patterns {
		ds, root, err := lintPattern(pat, analyzers, *par, *verbose, *noSuppress, *audit, timing, stderr)
		if err != nil {
			fmt.Fprintf(stderr, "simlint: %v\n", err)
			return 2
		}
		if modRoot == "" {
			modRoot = root
		}
		diags = append(diags, ds...)
	}
	timing.report()
	elapsed := time.Since(start)
	if *timeBudget > 0 && elapsed > *timeBudget {
		fmt.Fprintf(stderr, "simlint: analysis took %v, over the %v budget\n",
			elapsed.Round(time.Millisecond), *timeBudget)
		return 1
	}

	if *writeBaseline {
		b := analysis.NewBaseline(diags, modRoot)
		if err := b.WriteFile(*baselinePath); err != nil {
			fmt.Fprintf(stderr, "simlint: %v\n", err)
			return 2
		}
		fmt.Fprintf(stderr, "simlint: wrote %d baseline entries to %s\n", len(b.Entries), *baselinePath)
		return 0
	}
	if *baselinePath != "" {
		b, err := analysis.ReadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintf(stderr, "simlint: %v (run with -write-baseline to create it)\n", err)
			return 2
		}
		var stale []analysis.BaselineEntry
		diags, stale = b.Filter(diags, modRoot)
		if *verbose {
			for _, e := range stale {
				fmt.Fprintf(stderr, "simlint: stale baseline entry: %s: %s (%s)\n", e.File, e.Message, e.Rule)
			}
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []analysis.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintf(stderr, "simlint: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// lintPattern loads one pattern's packages (sequentially — the loader is
// not concurrency-safe), builds the shared interprocedural module over
// everything the loader saw, and analyzes packages in parallel. Results
// are collected by package index, so output order matches load order no
// matter how the goroutines are scheduled.
func lintPattern(pat string, analyzers []*analysis.Analyzer, par int, verbose, noSuppress, audit bool, timing *timingSink, stderr io.Writer) ([]analysis.Diagnostic, string, error) {
	root := strings.TrimSuffix(pat, "...")
	recursive := root != pat
	root = filepath.Clean(strings.TrimSuffix(root, "/"))
	if root == "" {
		root = "."
	}

	loader, err := analysis.NewLoader(root)
	if err != nil {
		return nil, "", err
	}
	var pkgs []*analysis.Package
	if recursive {
		pkgs, err = loader.LoadAll(root)
	} else {
		var pkg *analysis.Package
		pkg, err = loader.LoadDir(root)
		pkgs = []*analysis.Package{pkg}
	}
	if err != nil {
		return nil, "", err
	}

	if verbose {
		for _, pkg := range pkgs {
			for _, te := range pkg.TypeErrors {
				fmt.Fprintf(stderr, "simlint: warning: %s: %v\n", pkg.ImportPath, te)
			}
		}
	}

	// One interprocedural layer over every package this loader touched
	// (including module-local imports pulled in transitively), shared
	// read-only by the per-package analyzer goroutines.
	mod := analysis.BuildModule(loader.Packages())

	results := make([][]analysis.Diagnostic, len(pkgs))
	errs := make([]error, len(pkgs))
	sem := make(chan struct{}, par)
	var wg sync.WaitGroup
	for i, pkg := range pkgs {
		wg.Add(1)
		go func(i int, pkg *analysis.Package) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[i], errs[i] = analysis.RunPackage(pkg, analyzers, analysis.RunOptions{
				Mod:        mod,
				Now:        timing.now(),
				Observe:    timing.observe(),
				NoSuppress: noSuppress,
				Audit:      audit,
			})
		}(i, pkg)
	}
	wg.Wait()

	var diags []analysis.Diagnostic
	for i := range pkgs {
		if errs[i] != nil {
			return nil, "", errs[i]
		}
		diags = append(diags, results[i]...)
	}
	if verbose {
		for _, stub := range loader.Stubs() {
			fmt.Fprintf(stderr, "simlint: warning: import %q stubbed (not resolvable)\n", stub)
		}
	}
	return diags, loader.ModuleRoot, nil
}

// timingSink accumulates per-analyzer wall time across packages and
// goroutines. The clock is injected into the analysis package from here:
// internal/analysis sits inside its own norand scope and must not call
// time.Now itself.
type timingSink struct {
	mu      sync.Mutex
	enabled bool
	out     io.Writer
	total   map[string]time.Duration
}

func newTimingSink(enabled bool, out io.Writer) *timingSink {
	return &timingSink{enabled: enabled, out: out, total: map[string]time.Duration{}}
}

func (t *timingSink) now() func() time.Time {
	if !t.enabled {
		return nil
	}
	return time.Now
}

func (t *timingSink) observe() func(rule string, elapsed time.Duration) {
	if !t.enabled {
		return nil
	}
	return func(rule string, elapsed time.Duration) {
		t.mu.Lock()
		defer t.mu.Unlock()
		t.total[rule] += elapsed
	}
}

func (t *timingSink) report() {
	if !t.enabled {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	names := make([]string, 0, len(t.total))
	for name := range t.total {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(t.out, "simlint: timing: %-12s %v\n", name, t.total[name].Round(time.Microsecond))
	}
}
