// Command gengraph generates synthetic graphs in the structural classes
// of the paper's evaluation and writes them as edge-list files.
//
// Examples:
//
//	gengraph -kind copying -n 100000 -k 8 -p 0.3 -o web.txt
//	gengraph -kind ba -n 50000 -k 14 -p 0.6 -o social.txt
//	gengraph -dataset web-stanford-sim -o web-stanford.txt
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/bench"
	"repro/internal/graph"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gengraph: ")

	kind := flag.String("kind", "", "generator kind: er|ba|copying|collab|citation|bipartite|star|cycle|path|grid|complete")
	dataset := flag.String("dataset", "", "generate a named dataset stand-in from the benchmark catalog instead")
	scale := flag.Float64("scale", 1.0, "catalog scale factor (with -dataset)")
	n := flag.Int("n", 10000, "number of vertices (communities for collab; users for bipartite)")
	m := flag.Int("m", 0, "number of edges (er only; default 4n)")
	k := flag.Int("k", 4, "per-vertex edges / community size / ratings")
	p := flag.Float64("p", 0.3, "model probability (ba: reciprocity; copying: beta; collab: p_in)")
	n2 := flag.Int("n2", 0, "second partition size (bipartite; default n/5)")
	rows := flag.Int("rows", 100, "grid rows")
	cols := flag.Int("cols", 100, "grid cols")
	seed := flag.Uint64("seed", 1, "generator seed")
	out := flag.String("o", "", "output file (default stdout)")
	format := flag.String("format", "text", "output format: text (edge list) or binary")
	stats := flag.Bool("stats", false, "print structural statistics to stderr")
	flag.Parse()

	g, err := buildGraph(*dataset, *scale, *kind, *n, *m, *k, *p, *n2, *rows, *cols, *seed)
	if err != nil {
		log.Fatal(err)
	}

	if *stats {
		st := graph.ComputeStats(g, 20, *seed)
		fmt.Fprintln(os.Stderr, st)
	}

	if err := writeGraph(g, *out, *format); err != nil {
		log.Fatal(err)
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "wrote %s: n=%d m=%d\n", *out, g.N(), g.M())
	}
}

// buildGraph resolves the generation request from either a catalog
// dataset name or an explicit generator spec.
func buildGraph(dataset string, scale float64, kind string, n, m, k int, p float64, n2, rows, cols int, seed uint64) (*graph.Graph, error) {
	switch {
	case dataset != "":
		ds, err := bench.ByName(dataset, scale)
		if err != nil {
			return nil, err
		}
		return ds.Build()
	case kind != "":
		if m == 0 {
			m = 4 * n
		}
		if n2 == 0 {
			n2 = n / 5
		}
		return graph.Generate(graph.GenSpec{
			Kind: kind, N: n, M: m, K: k, P: p,
			N2: n2, Rows: rows, Cols: cols, Seed: seed,
		})
	default:
		return nil, fmt.Errorf("one of -kind or -dataset is required")
	}
}

// writeGraph writes g to path (or stdout) in the requested format.
func writeGraph(g *graph.Graph, path, format string) error {
	var w *os.File
	if path == "" {
		w = os.Stdout
	} else {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	switch format {
	case "text":
		return graph.WriteEdgeList(w, g)
	case "binary":
		return graph.WriteBinary(w, g)
	default:
		return fmt.Errorf("unknown format %q (want text or binary)", format)
	}
}
