package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/graph"
)

func TestBuildGraphByKind(t *testing.T) {
	g, err := buildGraph("", 1, "copying", 100, 0, 4, 0.3, 0, 0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 100 {
		t.Fatalf("n = %d", g.N())
	}
}

func TestBuildGraphByDataset(t *testing.T) {
	g, err := buildGraph("ca-grqc-sim", 0.05, "", 0, 0, 0, 0, 0, 0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() == 0 {
		t.Fatal("empty dataset graph")
	}
}

func TestBuildGraphErrors(t *testing.T) {
	if _, err := buildGraph("", 1, "", 0, 0, 0, 0, 0, 0, 0, 1); err == nil {
		t.Fatal("expected error without kind or dataset")
	}
	if _, err := buildGraph("nope", 1, "", 0, 0, 0, 0, 0, 0, 0, 1); err == nil {
		t.Fatal("expected error for unknown dataset")
	}
	if _, err := buildGraph("", 1, "bogus", 10, 0, 0, 0, 0, 0, 0, 1); err == nil {
		t.Fatal("expected error for unknown kind")
	}
}

func TestWriteGraphFormats(t *testing.T) {
	g, err := buildGraph("", 1, "er", 30, 90, 0, 0, 0, 0, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()

	text := filepath.Join(dir, "g.txt")
	if err := writeGraph(g, text, "text"); err != nil {
		t.Fatal(err)
	}
	g2, err := graph.LoadEdgeListFile(text)
	if err != nil {
		t.Fatal(err)
	}
	if g2.M() != g.M() {
		t.Fatal("text round trip lost edges")
	}

	bin := filepath.Join(dir, "g.bin")
	if err := writeGraph(g, bin, "binary"); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(bin)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	g3, err := graph.ReadBinary(f)
	if err != nil {
		t.Fatal(err)
	}
	if g3.M() != g.M() {
		t.Fatal("binary round trip lost edges")
	}

	if err := writeGraph(g, filepath.Join(dir, "g.x"), "xml"); err == nil {
		t.Fatal("expected error for unknown format")
	}
}
