// Command simrouter fronts a set of shard simservers with deterministic
// scatter-gather: each query fans out to every shard, the per-shard
// fragments are merged with the single-node replay, and the answer —
// results and pruning statistics — is byte-identical to one simserver
// holding the whole query.
//
// The shard servers run simserver -shard i/n over the same graph, seed,
// and parameters; the router probes /readyz and /shardinfo on every
// address until the manifests form one coherent topology, then serves.
// A slow shard is hedged to the next server after -hedge-delay and a
// down shard fails over immediately (every server holds the full
// snapshot, so any server can score any vertex range).
//
// Example:
//
//	simserver -graph web.txt -shard 0/2 -addr :8081 &
//	simserver -graph web.txt -shard 1/2 -addr :8082 &
//	simrouter -shards http://localhost:8081,http://localhost:8082 -addr :8080
//	curl 'localhost:8080/topk?u=42&k=20'
//	curl 'localhost:8080/statusz'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/router"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("simrouter: ")

	shards := flag.String("shards", "", "comma-separated shard server base URLs (required)")
	addr := flag.String("addr", ":8080", "listen address")
	hedgeDelay := flag.Duration("hedge-delay", 50*time.Millisecond, "delay before hedging a slow shard to the next server (0 disables hedging)")
	maxAttempts := flag.Int("max-attempts", 2, "servers tried per shard range (failover + hedging)")
	queryTimeout := flag.Duration("query-timeout", 10*time.Second, "per-query deadline across all attempts (0 = unlimited)")
	probeTimeout := flag.Duration("probe-timeout", 2*time.Second, "per-address deadline when probing membership")
	probeRetry := flag.Duration("probe-retry", time.Second, "how long to wait between membership probe attempts")
	shutdownGrace := flag.Duration("shutdown-grace", 5*time.Second, "how long to drain in-flight requests on SIGINT/SIGTERM")
	wireMode := flag.String("wire", router.WireBin, "shard transport encoding: bin (persistent TCP / negotiated HTTP) or json (force JSON)")
	flag.Parse()

	if *shards == "" {
		log.Fatal("-shards is required")
	}
	var addrs []string
	for _, s := range strings.Split(*shards, ",") {
		if s = strings.TrimSpace(s); s != "" {
			addrs = append(addrs, s)
		}
	}
	if len(addrs) == 0 {
		log.Fatal("-shards lists no addresses")
	}

	if *wireMode != router.WireBin && *wireMode != router.WireJSON {
		log.Fatalf("-wire must be %q or %q, got %q", router.WireBin, router.WireJSON, *wireMode)
	}
	rt := router.New(router.Config{
		Shards:       addrs,
		HedgeDelay:   *hedgeDelay,
		MaxAttempts:  *maxAttempts,
		QueryTimeout: *queryTimeout,
		ProbeTimeout: *probeTimeout,
		Wire:         *wireMode,
	})

	// Serve immediately — the router answers 503 not_ready until the
	// probe succeeds — and keep probing in the background so the shard
	// servers may come up in any order (their index builds take time).
	probeCtx, probeCancel := context.WithCancel(context.Background())
	defer probeCancel()
	go func() {
		for {
			err := rt.Probe(probeCtx)
			if err == nil {
				log.Printf("topology ready: %d shards", len(addrs))
				return
			}
			log.Printf("probe: %v (retrying in %v)", err, *probeRetry)
			select {
			case <-probeCtx.Done():
				return
			case <-time.After(*probeRetry):
			}
		}
	}()

	writeTimeout := 0 * time.Second
	if *queryTimeout > 0 {
		writeTimeout = *queryTimeout + 5*time.Second
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           rt,
		ReadHeaderTimeout: 5 * time.Second,
		WriteTimeout:      writeTimeout,
		IdleTimeout:       2 * time.Minute,
	}
	go func() {
		log.Printf("listening on %s (shards: %s)", *addr, strings.Join(addrs, ", "))
		if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	fmt.Println()
	log.Print("shutting down")
	probeCancel()
	ctx, cancel := context.WithTimeout(context.Background(), *shutdownGrace)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}
}
