// Command benchguard gates CI on benchmark regressions: it reads
// `go test -bench` output on stdin, compares one benchmark's ns/op
// against a committed BENCH_*.json snapshot, and exits nonzero when the
// measurement exceeds the snapshot by more than -max-ratio.
//
//	go test -run - -bench 'WalkStep$' -benchtime 100x ./internal/core | \
//	    benchguard -baseline BENCH_core.json -name BenchmarkWalkStep -max-ratio 2
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/bench"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchguard: ")
	baselinePath := flag.String("baseline", "", "committed BENCH_*.json snapshot (required)")
	name := flag.String("name", "", "benchmark to gate, e.g. BenchmarkWalkStep (required)")
	maxRatio := flag.Float64("max-ratio", 2, "fail when current ns/op exceeds snapshot ns/op by this factor")
	flag.Parse()
	if *baselinePath == "" || *name == "" {
		log.Fatal("-baseline and -name are required")
	}

	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		log.Fatal(err)
	}
	var baseline bench.BenchReport
	if err := json.Unmarshal(raw, &baseline); err != nil {
		log.Fatalf("parsing %s: %v", *baselinePath, err)
	}
	current, err := bench.ParseGoBench(os.Stdin)
	if err != nil {
		log.Fatal(err)
	}
	if err := bench.GuardRatio(baseline, current, *name, *maxRatio); err != nil {
		log.Fatal(err)
	}
	cur := 0.0
	for _, r := range current {
		if r.Name == *name {
			cur = r.NsPerOp
		}
	}
	fmt.Printf("benchguard: %s within %.1fx of snapshot (%.1f ns/op)\n", *name, *maxRatio, cur)
}
