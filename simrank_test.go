package simrank

import (
	"math"
	"strings"
	"testing"
)

func TestBuilderAndQueries(t *testing.T) {
	gb := NewGraphBuilder(6)
	// Two "pages" 4 and 5 linked from the same three pages 1, 2, 3.
	for _, src := range []int{1, 2, 3} {
		if err := gb.AddEdge(src, 4); err != nil {
			t.Fatal(err)
		}
		if err := gb.AddEdge(src, 5); err != nil {
			t.Fatal(err)
		}
	}
	if err := gb.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	g := gb.Build()
	if g.NumVertices() != 6 || g.NumEdges() != 7 {
		t.Fatalf("n=%d m=%d", g.NumVertices(), g.NumEdges())
	}
	if !g.HasEdge(1, 4) || g.HasEdge(4, 1) {
		t.Fatal("edges wrong")
	}
	if g.InDegree(4) != 3 || g.OutDegree(1) != 2 {
		t.Fatal("degrees wrong")
	}

	idx := BuildIndex(g, DefaultOptions())
	s, err := idx.SinglePair(4, 5)
	if err != nil {
		t.Fatal(err)
	}
	// 4 and 5 share all three in-links: the t=1 series term alone is
	// c·(1−c)/3 = 0.08 at c = 0.6, and t=2 adds c²·(1−c)/9.
	if s < 0.07 {
		t.Fatalf("s(4,5) = %v, expected clearly positive", s)
	}
	top, err := idx.TopK(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) == 0 || top[0].Node != 5 {
		t.Fatalf("TopK(4) = %v, expected 5 first", top)
	}
}

func TestSinglePairSelf(t *testing.T) {
	g := GenerateWebGraph(50, 3, 0.3, 1)
	idx := BuildIndex(g, DefaultOptions())
	s, err := idx.SinglePair(7, 7)
	if err != nil || s != 1 {
		t.Fatalf("self similarity = %v, err %v", s, err)
	}
}

func TestVertexRangeErrors(t *testing.T) {
	g := GenerateWebGraph(10, 2, 0.3, 1)
	idx := BuildIndex(g, DefaultOptions())
	if _, err := idx.TopK(10, 5); err == nil {
		t.Fatal("expected error for out-of-range vertex")
	}
	if _, err := idx.TopK(-1, 5); err == nil {
		t.Fatal("expected error for negative vertex")
	}
	if _, err := idx.SinglePair(0, 99); err == nil {
		t.Fatal("expected error")
	}
	if _, err := idx.Similar(99, 0.1); err == nil {
		t.Fatal("expected error")
	}
	if _, err := ExactSingleSource(g, DefaultOptions(), 99); err == nil {
		t.Fatal("expected error")
	}
}

func TestBuilderErrors(t *testing.T) {
	gb := NewGraphBuilder(3)
	if err := gb.AddEdge(0, 3); err == nil {
		t.Fatal("expected range error")
	}
	if err := gb.AddEdge(-1, 0); err == nil {
		t.Fatal("expected range error")
	}
	if err := gb.AddUndirectedEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	g := gb.Build()
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("undirected edge incomplete")
	}
}

func TestFromEdges(t *testing.T) {
	g, err := FromEdges(3, [][2]int{{0, 1}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Fatal("edges lost")
	}
	if _, err := FromEdges(2, [][2]int{{0, 5}}); err == nil {
		t.Fatal("expected error")
	}
}

func TestLoadEdgeList(t *testing.T) {
	g, err := LoadEdgeList(strings.NewReader("# c\n0 1\n1 2\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 2 {
		t.Fatalf("n=%d m=%d", g.NumVertices(), g.NumEdges())
	}
	if _, err := LoadEdgeList(strings.NewReader("bogus line\n")); err == nil {
		t.Fatal("expected parse error")
	}
}

func TestTopKAgainstExact(t *testing.T) {
	g := GenerateCollaborationGraph(100, 5, 0.7, 3)
	idx := BuildIndex(g, DefaultOptions())
	hits, total := 0, 0
	for u := 0; u < 15; u++ {
		approx, err := idx.TopK(u, 10)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ExactTopK(g, DefaultOptions(), u, 10)
		if err != nil {
			t.Fatal(err)
		}
		got := map[int]bool{}
		for _, r := range approx {
			got[r.Node] = true
		}
		for _, w := range want {
			if w.Score < 0.05 {
				continue
			}
			total++
			if got[w.Node] {
				hits++
			}
		}
	}
	if total > 0 && float64(hits) < 0.85*float64(total) {
		t.Fatalf("recall %d/%d too low", hits, total)
	}
}

func TestSimilarThreshold(t *testing.T) {
	g := GenerateCollaborationGraph(80, 5, 0.8, 5)
	idx := BuildIndex(g, DefaultOptions())
	res, err := idx.Similar(0, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if r.Score < 0.05 {
			t.Fatalf("result below threshold: %v", r)
		}
	}
}

func TestAllTopKShape(t *testing.T) {
	g := GenerateWebGraph(80, 4, 0.3, 2)
	opts := DefaultOptions()
	opts.Workers = 2
	idx := BuildIndex(g, opts)
	rows := idx.AllTopK(5)
	if len(rows) != g.NumVertices() {
		t.Fatalf("rows = %d", len(rows))
	}
	for u, row := range rows {
		if len(row) > 5 {
			t.Fatalf("row %d has %d entries", u, len(row))
		}
		for _, r := range row {
			if r.Node == u {
				t.Fatalf("vertex %d in its own results", u)
			}
		}
	}
}

func TestExactAllPairsSymmetric(t *testing.T) {
	g := GenerateSocialGraph(40, 3, 0.3, 7)
	s := ExactAllPairs(g, 0.6, 15)
	n := g.NumVertices()
	for i := 0; i < n; i++ {
		if s[i][i] != 1 {
			t.Fatalf("diag %d = %v", i, s[i][i])
		}
		for j := 0; j < n; j++ {
			if math.Abs(s[i][j]-s[j][i]) > 1e-12 {
				t.Fatal("asymmetric")
			}
		}
	}
	// Defaults kick in for bad arguments.
	s2 := ExactAllPairs(g, -1, 0)
	if len(s2) != n {
		t.Fatal("defaulted call failed")
	}
}

func TestExhaustiveOption(t *testing.T) {
	g := GenerateCollaborationGraph(40, 5, 0.8, 9)
	opts := DefaultOptions()
	opts.Exhaustive = true
	idx := BuildIndex(g, opts)
	top, err := idx.TopK(0, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(top); i++ {
		if top[i].Score > top[i-1].Score {
			t.Fatal("unsorted")
		}
	}
}

func TestExactScoresOption(t *testing.T) {
	g := GenerateCollaborationGraph(50, 5, 0.8, 13)
	opts := DefaultOptions()
	opts.ExactScores = true
	idx := BuildIndex(g, opts)
	top, err := idx.TopK(0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) > 0 {
		// Scores are deterministic series values; cross-check the best.
		row, err := ExactSingleSource(g, opts, 0)
		if err != nil {
			t.Fatal(err)
		}
		if diff := row[top[0].Node] - top[0].Score; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("exact-scored %v vs series %v", top[0].Score, row[top[0].Node])
		}
	}
}

func TestTopKWithStats(t *testing.T) {
	g := GenerateWebGraph(200, 4, 0.3, 5)
	idx := BuildIndex(g, DefaultOptions())
	res, st, err := idx.TopKWithStats(3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if st.Refined+st.PrunedByRough+st.PrunedByBound > st.Candidates {
		t.Fatalf("stats inconsistent: %+v", st)
	}
	plain, err := idx.TopK(3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(plain) {
		t.Fatal("stats variant changed results")
	}
	if _, _, err := idx.TopKWithStats(-1, 5); err == nil {
		t.Fatal("expected range error")
	}
}

func TestSimilarityJoinPublicAPI(t *testing.T) {
	g := GenerateCollaborationGraph(40, 5, 0.8, 17)
	idx := BuildIndex(g, DefaultOptions())
	pairs := idx.SimilarityJoin(0.05, 10)
	if len(pairs) > 10 {
		t.Fatalf("cap ignored: %d pairs", len(pairs))
	}
	for i, p := range pairs {
		if p.U >= p.V || p.Score < 0.05 {
			t.Fatalf("bad pair %+v", p)
		}
		if i > 0 && pairs[i-1].Score < p.Score {
			t.Fatal("unsorted pairs")
		}
	}
}

func TestOptionsDefaults(t *testing.T) {
	p := DefaultOptions().toParams()
	if p.Seed != 1 {
		t.Fatalf("default seed = %d", p.Seed)
	}
	o := Options{Seed: 42, DecayFactor: 0.8}
	if o.toParams().Seed != 42 {
		t.Fatal("seed not propagated")
	}
}

func TestStatsAndGraphAccessors(t *testing.T) {
	g := GenerateWebGraph(60, 3, 0.3, 4)
	idx := BuildIndex(g, DefaultOptions())
	if idx.Graph() != g {
		t.Fatal("Graph accessor broken")
	}
	st := idx.Stats()
	if st.IndexBytes <= 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestGraphStats(t *testing.T) {
	g := GenerateWebGraph(300, 4, 0.3, 9)
	st := g.Stats(10)
	if st.Vertices != 300 || st.Edges != g.NumEdges() {
		t.Fatalf("stats sizes wrong: %+v", st)
	}
	if st.AvgInDegree <= 0 || st.MaxInDegree <= 0 {
		t.Fatalf("degree stats missing: %+v", st)
	}
	if st.AvgDistance <= 0 {
		t.Fatalf("distance not sampled: %+v", st)
	}
	fast := g.Stats(0)
	if fast.AvgDistance != 0 {
		t.Fatal("distSamples=0 should skip distance sampling")
	}
}

func TestBipartiteGenerator(t *testing.T) {
	g := GenerateBipartiteGraph(50, 20, 4, 3)
	if g.NumVertices() != 70 {
		t.Fatal("size wrong")
	}
	idx := BuildIndex(g, DefaultOptions())
	// Items are similar through co-raters; query an item.
	top, err := idx.TopK(55, 5)
	if err != nil {
		t.Fatal(err)
	}
	_ = top // may legitimately be empty on sparse data; just exercise
}

func TestCitationGenerator(t *testing.T) {
	g := GenerateCitationGraph(200, 4, 8)
	if g.NumVertices() != 200 {
		t.Fatal("size wrong")
	}
	idx := BuildIndex(g, DefaultOptions())
	if _, err := idx.TopK(150, 10); err != nil {
		t.Fatal(err)
	}
}
