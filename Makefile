# Tier-1 verification gate. `make check` is what CI and pre-merge runs:
# vet, build, full test suite, and a race pass over the concurrency-heavy
# core package.

GO ?= go

.PHONY: check vet build test race bench bench-json

check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/core/...

# Query hot-path microbenchmarks (the 100k-vertex engine build takes a
# couple of minutes the first time).
bench:
	$(GO) test -bench 'TopK$$|SinglePairOneSided|WalkStep' -run - ./internal/core

# Regenerate the committed benchmark snapshot.
bench-json:
	$(GO) build -o /tmp/benchjson ./cmd/benchjson
	$(GO) test -bench 'TopK$$|SinglePairOneSided|WalkStep' -run - ./internal/core | \
		/tmp/benchjson -meta pkg=internal/core -o BENCH_core.json
