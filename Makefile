# Tier-1 verification gate. `make check` is what CI and pre-merge runs:
# formatting, vet, build, the full test suite (shuffled, so test-order
# coupling can't hide), a race pass over every package, and the simlint
# determinism/concurrency rules (cmd/simlint) over ./... .
# scripts/ci.sh runs the same sequence standalone.

GO ?= go

.PHONY: check fmt vet build test race lint lint-baseline bench bench-json

check: fmt vet build test race lint

# gofmt cleanliness, including analyzer fixtures under testdata/.
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test -shuffle=on ./...

race:
	$(GO) test -race ./...

# simlint: norand, mapiter, seedmix, poolbalance, gospawn, atomicfield,
# lockbalance, ctxflow, sealwrite, unsafeconfine, hotalloc, wiretaint,
# poolescape (see internal/analysis). Gated against the committed
# baseline: only NEW diagnostics fail; accepted debt lives in
# lint.baseline.json. The second pass audits the suppression inventory:
# a //lint:ignore directive whose finding no longer fires is rot and
# fails the target.
lint:
	$(GO) run ./cmd/simlint -baseline lint.baseline.json ./...
	$(GO) run ./cmd/simlint -audit ./...

# Regenerate the committed lint baseline after deliberately accepting a
# diagnostic as debt. Review the diff before committing: the baseline
# should shrink over time, not absorb regressions.
lint-baseline:
	$(GO) run ./cmd/simlint -update-baseline ./...

# Query hot-path microbenchmarks (the 100k-vertex engine build takes a
# couple of minutes the first time). RouterTopK/RouterTopKBatch live in
# internal/router: routed queries over a real 3-shard loopback topology
# (binary wire). WireCodec measures the binary codec round-trip alone.
BENCH_RE := 'TopK$$|SinglePairOneSided|WalkStep|ColdStartLoad|TopKDuringRefresh|TopKZipfThroughput|RouterTopK$$|RouterTopKBatch$$|WireCodec'
BENCH_PKGS := ./internal/core ./internal/router ./internal/wire

bench:
	$(GO) test -bench $(BENCH_RE) -run - $(BENCH_PKGS)

# Regenerate the committed benchmark snapshot.
bench-json:
	$(GO) build -o /tmp/benchjson ./cmd/benchjson
	$(GO) test -bench $(BENCH_RE) -run - $(BENCH_PKGS) | \
		/tmp/benchjson -meta pkg=internal/core,internal/router,internal/wire -o BENCH_core.json
