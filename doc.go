// Package simrank provides scalable top-k SimRank similarity search,
// implementing "Scalable Similarity Search for SimRank" (Kusumoto,
// Maehara, Kawarabayashi; SIGMOD 2014).
//
// SimRank (Jeh & Widom, KDD 2002) scores two vertices as similar when
// they are linked from similar vertices. This package answers, for a
// query vertex u, "which k vertices are most SimRank-similar to u?" in
// time that is effectively independent of the graph size, after an O(n)
// preprocess, using only O(m) memory.
//
// # Quick start
//
//	g, err := simrank.LoadEdgeListFile("graph.txt")
//	if err != nil { ... }
//	idx := simrank.BuildIndex(g, simrank.DefaultOptions())
//	top, err := idx.TopK(42, 20) // 20 most similar vertices to vertex 42
//
// # How it works
//
// The method rewrites the SimRank recursion as the linear series
// S = Σ_t cᵗ·(Pᵗ)ᵀ·D·Pᵗ, where P is the in-link random-walk transition
// matrix and D a diagonal correction (approximated by (1−c)·I, which
// rescales but does not reorder top-k results). Single-pair scores are
// then estimated by Monte-Carlo simulation over pairs of in-link walks
// in O(T·R) time. A preprocess computes per-vertex L2 norms of the walk
// distributions (the "γ" table) and a bipartite candidate index from
// colliding random walks; queries enumerate candidates, prune them with
// distance-dependent upper bounds, and refine survivors with adaptive
// sampling.
//
// Deterministic exact references (the naive Jeh–Widom iteration and the
// truncated-series single-source evaluation) are exposed through the
// Exact* functions for validation and small-graph use.
package simrank
